//! The evaluation harness: regenerates every figure of the paper.
//!
//! ```text
//! harness [figure] [--requests N] [--iters K] [--seed S] [--verify-threads T]
//!         [--obs-out trace.json] [--metrics-out metrics.json]
//!         [--prom-out prom.txt] [--prom-addr 127.0.0.1:9464]
//!         [--dump-bytecode app]
//!
//!   figure ∈ { fig6, fig7, fig8, fig9, fig10, fig11, fig12, ratios,
//!              errorbars, ablations, bench-pr3, bench-pr4, bench-pr5,
//!              bench-pr6, bench-pr7, bench-pr8, report, all }
//!
//! harness diff <a.json> <b.json> [--threshold-pct X]
//! harness validate-metrics <schema.json> <metrics.json>
//! harness validate-json <file.json>
//! harness validate-prom <prom.txt>
//! harness trend
//! ```
//!
//! `--obs-out` / `--metrics-out` capture one fully-instrumented wiki
//! run and write the Chrome `trace_event` / metrics-registry JSON
//! exports (open the trace in Perfetto or `chrome://tracing`). With no
//! explicit figure, the capture is the whole job. `--prom-out` /
//! `--prom-addr` (or `KAROUSOS_PROM_ADDR`) additionally run a live
//! Prometheus text-format exporter for the duration of the capture —
//! the file is atomically re-rendered every scrape interval and the
//! address serves it over HTTP, so an external scraper watches the
//! audit progress mid-flight.
//!
//! `report` captures one instrumented wiki run and prints the cost
//! attribution: ledger totals, the most fuel-expensive re-execution
//! groups, the per-handler-tree (digest) aggregation, and the most
//! expensive served requests.
//!
//! `diff` flattens every numeric leaf of two machine-readable exports
//! (metrics or BENCH_PR*.json) to dotted paths and prints per-counter
//! deltas; with `--threshold-pct X` it exits nonzero when any relative
//! delta exceeds X% (so `diff a.json a.json --threshold-pct 0` is a
//! zero-delta smoke check).
//!
//! `validate-metrics` checks a metrics export against the checked-in
//! schema (the draft-07 subset previously enforced by the retired
//! `tools/validate_metrics.py`); `validate-json` checks any file
//! parses as JSON; `validate-prom` checks a Prometheus exposition via
//! `obs::check_exposition`. `trend` aggregates the committed
//! `BENCH_PR*.json` evidence files into one trajectory table.
//!
//! `--dump-bytecode <motd|stacks|wiki>` prints the compiled replay
//! bytecode of every function in the app's program (DESIGN.md §11) and
//! exits — the artifact both the runtime and the verifier dispatch.
//!
//! `--verify-threads T` (default 4, `0` = one per core) sets the worker
//! count for the parallel Karousos audit; every verification table
//! reports the single-threaded time, the parallel time, the speedup,
//! and the per-phase breakdown (preprocess / group replay / graph merge
//! / cycle check) of both.
//!
//! Figure ↔ paper mapping:
//!
//! * `fig6`  — server advice-collection overhead (MOTD 90% writes,
//!   stacks 90% reads, wiki mix), Karousos vs unmodified server.
//! * `fig7`  — verifier time vs sequential re-execution and Orochi-JS.
//! * `fig8`  — advice size (MOTD, wiki), Karousos vs Orochi-JS.
//! * `fig9`  — MOTD mixed: (a) server, (b) verifier, (c) advice size.
//! * `fig10` — MOTD 90% reads: (a)(b)(c).
//! * `fig11` — stacks mixed: (a)(b)(c).
//! * `fig12` — stacks 90% writes: (a)(b)(c).
//! * `ratios` — the headline ratio bands quoted in §6.1–§6.3.

use apps::App;
use bench::{
    advice_size, ms, server_overhead, server_overhead_with_seeds, verification,
    verification_with_seeds, AdviceSizeRow, Percentiles, ServerOverheadRow, VerificationRow,
    CONCURRENCY_SWEEP,
};
use workload::Mix;

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Wraps the system allocator, counting allocation events (calls to
/// `alloc`/`realloc`, not bytes) while `COUNTING` is enabled. Used by
/// the `bench-pr3` subcommand to report the verifier's replay-phase
/// allocation counts; when disabled it costs one relaxed atomic load
/// per allocation, which is noise for every other figure.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        // Thread-local probe behind its own gate: lets the verifier's
        // cost ledger attribute allocation events to the group each
        // worker is replaying (advisory column; off unless a capture
        // enables it).
        obs::allocprobe::note();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        obs::allocprobe::note();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Counts allocation events during `f`. Not reentrant; `bench-pr3` is
/// single-threaded while measuring.
fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOC_EVENTS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let out = f();
    COUNTING.store(false, Ordering::SeqCst);
    (out, ALLOC_EVENTS.load(Ordering::SeqCst))
}

struct Opts {
    figure: String,
    /// Whether a figure was named on the command line (as opposed to
    /// the `all` default): `--obs-out`/`--metrics-out` without an
    /// explicit figure runs only the telemetry capture.
    figure_explicit: bool,
    requests: usize,
    iters: usize,
    seed: u64,
    seeds: u64,
    verify_threads: usize,
    /// Chrome `trace_event` JSON destination (`--obs-out`); enables
    /// telemetry capture for the run.
    obs_out: Option<String>,
    /// Metrics JSON destination (`--metrics-out`); enables telemetry
    /// capture for the run.
    metrics_out: Option<String>,
    /// Prometheus text-format destination (`--prom-out`); enables
    /// telemetry capture and a live background exporter for the run.
    prom_out: Option<String>,
    /// Prometheus HTTP listen address (`--prom-addr`, falling back to
    /// `KAROUSOS_PROM_ADDR`); enables telemetry capture and a live
    /// background exporter for the run.
    prom_addr: Option<String>,
    /// `diff`: fail when any relative delta exceeds this percentage.
    threshold_pct: Option<f64>,
    /// Positional arguments after the figure/subcommand name (file
    /// paths for `diff` / `validate-*`).
    positional: Vec<String>,
    /// `--dump-bytecode <app>`: print the compiled replay bytecode of
    /// every function in the named app's program and exit.
    dump_bytecode: Option<String>,
    /// `--advice-mmap` (or `KAROUSOS_ADVICE_MMAP=1`): file-based audit
    /// paths map the advice file instead of reading it onto the heap.
    advice_mmap: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        figure: "all".to_string(),
        figure_explicit: false,
        requests: 600,
        iters: 3,
        seed: 1,
        seeds: 10,
        verify_threads: 4,
        obs_out: None,
        metrics_out: None,
        prom_out: None,
        prom_addr: karousos::config::prom_addr_from_env(),
        threshold_pct: None,
        positional: Vec::new(),
        dump_bytecode: None,
        advice_mmap: karousos::config::advice_mmap_from_env(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let numeric = |flag: &str, raw: Option<&String>| -> u64 {
        match raw.map(|r| r.parse::<u64>()) {
            Some(Ok(v)) => v,
            _ => {
                eprintln!("{flag} requires a positive integer value");
                std::process::exit(2);
            }
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--requests" => {
                opts.requests = numeric("--requests", args.get(i + 1)) as usize;
                i += 2;
            }
            "--iters" => {
                opts.iters = numeric("--iters", args.get(i + 1)).max(1) as usize;
                i += 2;
            }
            "--seed" => {
                opts.seed = numeric("--seed", args.get(i + 1));
                i += 2;
            }
            "--seeds" => {
                opts.seeds = numeric("--seeds", args.get(i + 1)).max(1);
                i += 2;
            }
            "--verify-threads" => {
                opts.verify_threads = numeric("--verify-threads", args.get(i + 1)) as usize;
                i += 2;
            }
            "--obs-out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--obs-out requires a file path");
                    std::process::exit(2);
                };
                opts.obs_out = Some(path.clone());
                i += 2;
            }
            "--metrics-out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--metrics-out requires a file path");
                    std::process::exit(2);
                };
                opts.metrics_out = Some(path.clone());
                i += 2;
            }
            "--prom-out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--prom-out requires a file path");
                    std::process::exit(2);
                };
                opts.prom_out = Some(path.clone());
                i += 2;
            }
            "--prom-addr" => {
                let Some(addr) = args.get(i + 1) else {
                    eprintln!("--prom-addr requires a listen address, e.g. 127.0.0.1:9464");
                    std::process::exit(2);
                };
                opts.prom_addr = Some(addr.clone());
                i += 2;
            }
            "--threshold-pct" => {
                match args.get(i + 1).map(|r| r.parse::<f64>()) {
                    Some(Ok(v)) if v >= 0.0 => opts.threshold_pct = Some(v),
                    _ => {
                        eprintln!("--threshold-pct requires a nonnegative number");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--advice-mmap" => {
                opts.advice_mmap = true;
                i += 1;
            }
            "--dump-bytecode" => {
                let Some(app) = args.get(i + 1) else {
                    eprintln!("--dump-bytecode requires an app name (motd, stacks, wiki)");
                    std::process::exit(2);
                };
                opts.dump_bytecode = Some(app.clone());
                i += 2;
            }
            other => {
                if opts.figure_explicit {
                    opts.positional.push(other.to_string());
                } else {
                    opts.figure = other.to_string();
                    opts.figure_explicit = true;
                }
                i += 1;
            }
        }
    }
    opts
}

fn print_server_rows(label: &str, rows: &[ServerOverheadRow]) {
    println!("\n  {label}");
    println!(
        "    {:>11} {:>14} {:>12} {:>9}",
        "concurrency", "unmodified ms", "karousos ms", "overhead"
    );
    for r in rows {
        println!(
            "    {:>11} {:>14} {:>12} {:>8.2}x",
            r.concurrency,
            ms(r.unmodified),
            ms(r.karousos),
            r.overhead()
        );
    }
}

fn print_verif_rows(label: &str, rows: &[VerificationRow]) {
    let threads = rows.first().map_or(0, |r| r.verify_threads);
    // On a single-core runner the par(N) column measures thread-pool
    // overhead, not speedup — a "0.9x speedup" there reads as a
    // regression when it is really the expected cost of parallelism
    // without parallel hardware. Relabel (and invert) so regenerated
    // results stay honest.
    let single_core =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) <= 1;
    println!("\n  {label}");
    println!(
        "    {:>11} {:>11} {:>11} {:>8} {:>10} {:>13} {:>8} {:>8}",
        "concurrency",
        "karousos ms",
        format!("par({threads}) ms"),
        if single_core { "overhead" } else { "speedup" },
        "orochi ms",
        "sequential ms",
        "k-groups",
        "o-groups"
    );
    for r in rows {
        let ratio = if single_core {
            r.karousos_parallel.as_secs_f64() / r.karousos.as_secs_f64().max(1e-9)
        } else {
            r.parallel_speedup()
        };
        println!(
            "    {:>11} {:>11} {:>11} {:>7.2}x {:>10} {:>13} {:>8} {:>8}",
            r.concurrency,
            ms(r.karousos),
            ms(r.karousos_parallel),
            ratio,
            ms(r.orochi),
            ms(r.sequential),
            r.karousos_groups,
            r.orochi_groups
        );
        println!("                phases seq: {}", r.phases);
        println!("                phases par: {}", r.phases_parallel);
    }
}

fn print_size_rows(label: &str, rows: &[AdviceSizeRow]) {
    println!("\n  {label}");
    println!(
        "    {:>11} {:>12} {:>11} {:>10} {:>12}",
        "concurrency", "karousos KB", "orochi KB", "k/o ratio", "var-log %"
    );
    for r in rows {
        println!(
            "    {:>11} {:>12} {:>11} {:>9.2}x {:>11}%",
            r.concurrency,
            r.karousos / 1024,
            r.orochi / 1024,
            r.karousos as f64 / r.orochi.max(1) as f64,
            r.var_log_share
        );
    }
}

fn sweep_server(app: App, mix: Mix, o: &Opts) -> Vec<ServerOverheadRow> {
    CONCURRENCY_SWEEP
        .iter()
        .map(|&c| server_overhead(app, mix, o.requests, c, o.seed, o.iters))
        .collect()
}

fn sweep_verif(app: App, mix: Mix, o: &Opts) -> Vec<VerificationRow> {
    CONCURRENCY_SWEEP
        .iter()
        .map(|&c| verification(app, mix, o.requests, c, o.seed, o.iters, o.verify_threads))
        .collect()
}

fn sweep_size(app: App, mix: Mix, o: &Opts) -> Vec<AdviceSizeRow> {
    CONCURRENCY_SWEEP
        .iter()
        .map(|&c| advice_size(app, mix, o.requests, c, o.seed))
        .collect()
}

fn fig6(o: &Opts) {
    println!(
        "== Figure 6: server processing time, Karousos vs unmodified ({} requests) ==",
        o.requests
    );
    print_server_rows(
        "motd, 90% writes",
        &sweep_server(App::Motd, Mix::WriteHeavy, o),
    );
    print_server_rows(
        "stacks, 90% reads",
        &sweep_server(App::Stacks, Mix::ReadHeavy, o),
    );
    print_server_rows(
        "wiki, mixed workload",
        &sweep_server(App::Wiki, Mix::Wiki, o),
    );
}

fn fig7(o: &Opts) {
    println!(
        "== Figure 7: verification time vs baselines ({} requests) ==",
        o.requests
    );
    print_verif_rows(
        "motd, 90% writes",
        &sweep_verif(App::Motd, Mix::WriteHeavy, o),
    );
    print_verif_rows(
        "stacks, 90% reads",
        &sweep_verif(App::Stacks, Mix::ReadHeavy, o),
    );
    print_verif_rows(
        "wiki, mixed workload",
        &sweep_verif(App::Wiki, Mix::Wiki, o),
    );
}

fn fig8(o: &Opts) {
    println!("== Figure 8: advice size ({} requests) ==", o.requests);
    print_size_rows(
        "motd, 90% writes",
        &sweep_size(App::Motd, Mix::WriteHeavy, o),
    );
    print_size_rows("wiki, mixed workload", &sweep_size(App::Wiki, Mix::Wiki, o));
}

fn fig_triple(n: u32, app: App, mix: Mix, o: &Opts) {
    println!("== Figure {n}: {} ({}) ==", app.name(), mix.name());
    print_server_rows("(a) server overhead", &sweep_server(app, mix, o));
    print_verif_rows("(b) verification time", &sweep_verif(app, mix, o));
    print_size_rows("(c) advice size", &sweep_size(app, mix, o));
}

fn ratios(o: &Opts) {
    println!("== §6.1–§6.3 headline ratios ({} requests) ==", o.requests);
    println!("\n  server overhead bands (min–max over concurrency sweep):");
    for (app, mixes) in [
        (App::Motd, &Mix::RW_MIXES[..]),
        (App::Stacks, &Mix::RW_MIXES[..]),
        (App::Wiki, &[Mix::Wiki][..]),
    ] {
        for &mix in mixes {
            let rows = sweep_server(app, mix, o);
            let (lo, hi) = rows.iter().fold((f64::MAX, 0f64), |(lo, hi), r| {
                (lo.min(r.overhead()), hi.max(r.overhead()))
            });
            println!(
                "    {:<7} {:<11} {lo:.2}x – {hi:.2}x",
                app.name(),
                mix.name()
            );
        }
    }
    println!("\n  wiki verifier speedup over Orochi-JS (grows with concurrency):");
    for row in sweep_verif(App::Wiki, Mix::Wiki, o) {
        let speedup = (row.orochi.as_secs_f64() / row.karousos.as_secs_f64() - 1.0) * 100.0;
        println!("    concurrency {:>2}: {speedup:+.1}%", row.concurrency);
    }
    println!("\n  advice size, Karousos vs Orochi-JS at max concurrency:");
    for (app, mix) in [(App::Motd, Mix::WriteHeavy), (App::Wiki, Mix::Wiki)] {
        let row = advice_size(app, mix, o.requests, 60, o.seed);
        println!(
            "    {:<7} karousos {:>6} KB vs orochi {:>6} KB ({:.0}%)",
            app.name(),
            row.karousos / 1024,
            row.orochi / 1024,
            row.karousos as f64 * 100.0 / row.orochi.max(1) as f64
        );
    }
}

fn pct(p: Percentiles) -> String {
    format!("{} [{}, {}]", ms(p.median), ms(p.p5), ms(p.p95))
}

/// The paper's statistical presentation: medians over independent
/// experiments with 5th/95th-percentile error bars (§6 "graphs show the
/// median from 10 experiments").
fn errorbars(o: &Opts) {
    println!(
        "== medians over {} experiments with [p5, p95] error bars ({} requests) ==",
        o.seeds, o.requests
    );
    for (app, mix) in [
        (App::Motd, Mix::WriteHeavy),
        (App::Stacks, Mix::ReadHeavy),
        (App::Wiki, Mix::Wiki),
    ] {
        println!(
            "
  {} ({})",
            app.name(),
            mix.name()
        );
        println!("    server processing (unmodified vs karousos):");
        for &c in &[1usize, 15, 60] {
            let (unmod, kar) = server_overhead_with_seeds(app, mix, o.requests, c, o.seeds);
            println!("      c={c:>2}: {} vs {}", pct(unmod), pct(kar));
        }
        println!(
            "    verification (karousos / karousos par({}) / orochi-js / sequential):",
            o.verify_threads
        );
        for &c in &[1usize, 15, 60] {
            let (k, kp, or, seq) =
                verification_with_seeds(app, mix, o.requests, c, o.seeds, o.verify_threads);
            println!(
                "      c={c:>2}: {} / {} / {} / {}",
                pct(k),
                pct(kp),
                pct(or),
                pct(seq)
            );
        }
    }
}

/// Ablations of Karousos's individual techniques (DESIGN.md §6):
/// R-concurrent-only logging, tree-shaped tags, and SIMD-on-demand,
/// each quantified against the log-everything / sequence-tag / expanded
/// alternative.
fn ablations(o: &Opts) {
    use karousos::{advice_sizes, audit, ooo_audit, ReplaySchedule};
    println!("== ablations ({} requests, concurrency 8) ==", o.requests);
    for (app, mix) in [
        (App::Motd, Mix::Mixed),
        (App::Stacks, Mix::Mixed),
        (App::Wiki, Mix::Wiki),
    ] {
        let p = bench::prepare(app, mix, o.requests, 8, o.seed);
        let report_k = audit(&p.program, &p.trace, &p.karousos, p.exp.isolation).unwrap();
        let report_o = audit(&p.program, &p.trace, &p.orochi, p.exp.isolation).unwrap();
        let sk = advice_sizes(&p.karousos);
        let so = advice_sizes(&p.orochi);
        println!("\n  {} ({})", app.name(), mix.name());
        println!(
            "    logging   : {} var-log entries (R-concurrent only) vs {} (log everything); \
             {} vs {} KB variable logs",
            p.karousos.var_log_entries(),
            p.orochi.var_log_entries(),
            sk.var_logs / 1024,
            so.var_logs / 1024
        );
        println!(
            "    grouping  : {} groups (handler trees) vs {} (handler sequences)",
            report_k.reexec.groups, report_o.reexec.groups
        );
        println!(
            "    dedup     : {} handler bodies interpreted for {} activations \
             ({:.1}x deduplication)",
            report_k.reexec.handlers_executed,
            report_k.reexec.activations_covered,
            report_k.reexec.activations_covered as f64
                / report_k.reexec.handlers_executed.max(1) as f64
        );
        println!(
            "    multivalue: {} collapsed vs {} expanded operand sets",
            report_k.reexec.uniform_ops, report_k.reexec.expanded_ops
        );
        println!(
            "    graph     : {} nodes, {} edges, acyclic",
            report_k.graph_nodes, report_k.graph_edges
        );
        // What batching buys: the same verifier with grouping disabled
        // (the paper's OOOExec, Fig. 22).
        let (t_batched, _) = bench::time_median(o.iters, || {
            audit(&p.program, &p.trace, &p.karousos, p.exp.isolation).unwrap()
        });
        let (t_ooo, _) = bench::time_median(o.iters, || {
            ooo_audit(
                &p.program,
                &p.trace,
                &p.karousos,
                p.exp.isolation,
                ReplaySchedule::Fifo,
            )
            .unwrap()
        });
        println!(
            "    batching  : {} ms batched vs {} ms ungrouped (OOOExec) — {:.2}x",
            ms(t_batched),
            ms(t_ooo),
            t_ooo.as_secs_f64() / t_batched.as_secs_f64().max(1e-9)
        );
    }
}

/// The handler-op-heavy uniform-group scenario shared with
/// `tests/alloc_regression.rs`: every request takes the same path with
/// the same payload, so all `n` land in one group and every multivalue
/// stays collapsed. The replay-phase allocation count on this scenario
/// is the headline number of the slot-compiled-frames refactor.
fn uniform_program() -> kem::Program {
    use kem::dsl;
    use kem::Value;
    let mut b = kem::ProgramBuilder::new();
    b.shared_var("cfg", Value::int(7), false);
    b.function(
        "handle",
        vec![
            dsl::let_("x", dsl::field(dsl::payload(), "k")),
            dsl::let_("s", dsl::sread("cfg")),
            dsl::swrite("cfg", dsl::add(dsl::sread("cfg"), dsl::lit(0))),
            dsl::let_("y", dsl::add(dsl::local("x"), dsl::local("s"))),
            dsl::let_("i", dsl::lit(0)),
            dsl::while_(
                dsl::lt(dsl::local("i"), dsl::lit(8)),
                vec![
                    dsl::let_("acc", dsl::add(dsl::local("y"), dsl::local("i"))),
                    dsl::let_("i", dsl::add(dsl::local("i"), dsl::lit(1))),
                ],
            ),
            dsl::register("boom", "on_boom"),
            dsl::emit("boom", dsl::local("y")),
            dsl::listener_count("n", "boom"),
            dsl::unregister("boom", "on_boom"),
            dsl::respond(dsl::local("y")),
        ],
    );
    b.function(
        "on_boom",
        vec![dsl::let_("z", dsl::add(dsl::payload(), dsl::lit(1)))],
    );
    b.request_handler("handle");
    b.build().expect("uniform program builds")
}

/// Replays a uniform group of `n` identical requests and returns
/// (allocation events during the replay phase, total replayed ops).
fn uniform_replay_allocs(n: usize) -> (u64, u64) {
    use kem::Value;
    let program = uniform_program();
    let cfg = kem::ServerConfig::default();
    let inputs: Vec<Value> = (0..n)
        .map(|_| Value::from_map([("k".to_string(), Value::int(5))].into()))
        .collect();
    let (out, advice) = karousos::run_instrumented_server(
        &program,
        &inputs,
        &cfg,
        karousos::CollectorMode::Karousos,
    )
    .expect("server run succeeds");
    let ops: u64 = advice.opcounts.values().map(|&c| c as u64).sum();
    let advice = karousos::AdviceRef::from_advice(&advice);
    let pre = karousos::verifier::preprocess(&program, &out.trace, &advice, cfg.isolation)
        .expect("preprocess accepts honest advice");
    let mut vars = karousos::verifier::VarStates::new();
    karousos::verifier::init_vars(&program, &mut vars);
    let (stats, allocs) = count_allocs(|| {
        karousos::verifier::ReExecutor::new(&program, &out.trace, &advice, &pre, &mut vars).run()
    });
    stats.expect("replay accepts honest advice");
    (allocs, ops)
}

/// `bench-pr3`: machine-readable evidence for the allocation-free
/// replay hot path. Writes `BENCH_PR3.json` (per-app phase wall-clocks
/// and replay-phase allocation counts, plus the uniform-group
/// microbenchmark vs the pre-refactor baseline) and exits nonzero if
/// the pinned allocation budget is exceeded, so CI can run it as a
/// smoke test.
fn bench_pr3(o: &Opts) {
    use karousos::audit;

    // Uniform-group microbenchmark (same scenario and budget as
    // tests/alloc_regression.rs). Warm-up run first so one-time lazy
    // allocations land outside the measured window.
    let _ = uniform_replay_allocs(8);
    let (allocs_8, ops_8) = uniform_replay_allocs(8);
    let (allocs_64, ops_64) = uniform_replay_allocs(64);
    // Pre-refactor baseline, measured at commit 14c4229 (name-based
    // interpreter) with this same harness scenario.
    let (base_allocs_8, base_ops_8) = (99u64, 32u64);
    let (base_allocs_64, base_ops_64) = (397u64, 256u64);
    let per_op = allocs_64 as f64 / ops_64.max(1) as f64;
    let base_per_op = base_allocs_64 as f64 / base_ops_64 as f64;
    let reduction = base_per_op / per_op.max(1e-9);
    let within_budget = allocs_64 <= 64 && allocs_64.saturating_sub(allocs_8) <= 16;

    let mut apps_json = String::new();
    for (app, mix) in [
        (App::Motd, Mix::Mixed),
        (App::Stacks, Mix::Mixed),
        (App::Wiki, Mix::Wiki),
    ] {
        let p = bench::prepare(app, mix, o.requests, 8, o.seed);
        let report = audit(&p.program, &p.trace, &p.karousos, p.exp.isolation)
            .expect("honest advice must be accepted");
        let advice = karousos::AdviceRef::from_advice(&p.karousos);
        let pre = karousos::verifier::preprocess(&p.program, &p.trace, &advice, p.exp.isolation)
            .expect("preprocess accepts honest advice");
        let mut vars = karousos::verifier::VarStates::new();
        karousos::verifier::init_vars(&p.program, &mut vars);
        let (stats, allocs) = count_allocs(|| {
            karousos::verifier::ReExecutor::new(&p.program, &p.trace, &advice, &pre, &mut vars)
                .run()
        });
        stats.expect("replay accepts honest advice");
        let ops: u64 = p.karousos.opcounts.values().map(|&c| c as u64).sum();
        let t = report.timing;
        if !apps_json.is_empty() {
            apps_json.push_str(",\n");
        }
        apps_json.push_str(&format!(
            "    {{\"app\": \"{}\", \"mix\": \"{}\", \"requests\": {}, \"concurrency\": 8,\n     \
             \"phases_us\": {{\"preprocess\": {}, \"group_replay\": {}, \"graph_merge\": {}, \
             \"cycle_check\": {}}},\n     \
             \"replay_allocs\": {}, \"replayed_ops\": {}, \"allocs_per_op\": {:.3}}}",
            app.name(),
            mix.name(),
            o.requests,
            t.preprocess.as_micros(),
            t.group_replay.as_micros(),
            t.graph_merge.as_micros(),
            t.cycle_check.as_micros(),
            allocs,
            ops,
            allocs as f64 / ops.max(1) as f64
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"pr3-allocation-free-replay\",\n  \"baseline_commit\": \"14c4229\",\n  \
         \"uniform_microbench\": {{\n    \
         \"n8\": {{\"allocs\": {allocs_8}, \"ops\": {ops_8}}},\n    \
         \"n64\": {{\"allocs\": {allocs_64}, \"ops\": {ops_64}}},\n    \
         \"baseline_n8\": {{\"allocs\": {base_allocs_8}, \"ops\": {base_ops_8}}},\n    \
         \"baseline_n64\": {{\"allocs\": {base_allocs_64}, \"ops\": {base_ops_64}}},\n    \
         \"allocs_per_op\": {per_op:.3},\n    \
         \"baseline_allocs_per_op\": {base_per_op:.3},\n    \
         \"reduction_factor\": {reduction:.1}\n  }},\n  \
         \"budget\": {{\"uniform_n64_max_allocs\": 64, \"uniform_marginal_max_allocs\": 16, \
         \"within_budget\": {within_budget}}},\n  \
         \"apps\": [\n{apps_json}\n  ]\n}}\n"
    );
    if let Err(e) = std::fs::write("BENCH_PR3.json", &json) {
        eprintln!("failed to write BENCH_PR3.json: {e}");
        std::process::exit(1);
    }
    println!("== bench-pr3: allocation-free replay hot path ==");
    println!(
        "  uniform group n=64: {allocs_64} allocs / {ops_64} ops = {per_op:.3} allocs/op \
         (baseline {base_per_op:.3}; {reduction:.1}x fewer)"
    );
    println!("  wrote BENCH_PR3.json");
    if !within_budget {
        eprintln!(
            "ALLOCATION BUDGET EXCEEDED: n=8 -> {allocs_8}, n=64 -> {allocs_64} \
             (budget: n64 <= 64, marginal <= 16)"
        );
        std::process::exit(1);
    }
}

/// Captures one fully-instrumented run — advice collection plus the
/// parallel audit — of the wiki workload and writes the exports named
/// by `--obs-out` (Chrome `trace_event` JSON, loadable in Perfetto /
/// `chrome://tracing`) and `--metrics-out` (metrics registry JSON with
/// the final progress heartbeat and the per-group/per-request cost
/// ledger). With `--prom-out` / `--prom-addr` a background exporter
/// additionally publishes live Prometheus snapshots for the duration
/// of the run. Returns the populated handle so `report` can print the
/// attribution from the same run.
fn obs_capture(o: &Opts) -> obs::Obs {
    use karousos::{audit_with_obs, run_instrumented_server_with_obs, CollectorMode};
    let mut exp = workload::Experiment::paper_default(App::Wiki, Mix::Wiki, 8, o.seed);
    exp.requests = o.requests;
    let program = App::Wiki.program();
    let inputs = exp.inputs();
    let obs = obs::Obs::enabled();
    let exporter = if o.prom_out.is_some() || o.prom_addr.is_some() {
        match obs::PromExporter::start(
            obs.clone(),
            o.prom_out.as_ref().map(std::path::PathBuf::from),
            o.prom_addr.as_deref(),
            obs::DEFAULT_SCRAPE_INTERVAL,
        ) {
            Ok(ex) => {
                if let Some(addr) = ex.local_addr() {
                    println!("  serving live Prometheus metrics on http://{addr}/metrics");
                }
                Some(ex)
            }
            Err(e) => {
                eprintln!("failed to start Prometheus exporter: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    // Attribute allocation events to ledger rows (the advisory column;
    // the global allocator feeds the thread-local probe only while
    // this is on).
    obs::allocprobe::set_enabled(true);
    let (out, advice) = run_instrumented_server_with_obs(
        &program,
        &inputs,
        &exp.server_config(),
        CollectorMode::Karousos,
        &obs,
    )
    .expect("wiki app runs");
    let report = audit_with_obs(
        &program,
        &out.trace,
        &advice,
        exp.isolation,
        karousos::AuditOptions::with_threads(o.verify_threads),
        &obs,
    )
    .expect("honest advice must be accepted");
    obs::allocprobe::set_enabled(false);
    let progress = obs.progress_snapshot();
    println!(
        "== telemetry capture: wiki mixed, {} requests, {} groups, {} spans, phase {} \
         ({}/{} groups replayed) ==",
        o.requests,
        report.reexec.groups,
        obs.spans_snapshot().len(),
        progress.phase.name(),
        progress.groups_done,
        progress.groups_total,
    );
    if let Some(ex) = exporter {
        // Final render happens on stop, so the file always ends on the
        // completed run.
        ex.stop();
    }
    if let Some(path) = &o.prom_out {
        println!("  wrote {path} (Prometheus text format 0.0.4)");
    }
    if let Some(path) = &o.obs_out {
        if let Err(e) = std::fs::write(path, obs.trace_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("  wrote {path} (chrome://tracing / Perfetto)");
    }
    if let Some(path) = &o.metrics_out {
        if let Err(e) = std::fs::write(path, obs.metrics_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("  wrote {path}");
    }
    obs
}

/// `report`: one instrumented wiki run, then the cost attribution —
/// where the audit's fuel, operations, and wall-clock actually went,
/// by re-execution group, by handler tree (control-flow digest), and
/// by served request.
fn report(o: &Opts) {
    let obs = obs_capture(o);
    let ledger = obs.ledger_snapshot();
    let t = ledger.totals();
    println!(
        "\n== cost attribution: wiki mixed, {} requests ==",
        o.requests
    );
    println!(
        "\n  totals: {} groups / {} requests replayed; {} fuel, {} ops \
         ({} bytecode), {} dict feeds, {} var accesses, {} us wall, {} alloc events",
        t.groups,
        t.requests,
        t.fuel,
        t.ops,
        t.bytecode_ops,
        t.dict_feeds,
        t.var_accesses,
        t.wall_us,
        t.alloc_events,
    );

    println!("\n  top groups by fuel:");
    println!(
        "    {:>6} {:>8} {:>10} {:>10} {:>8} {:>10} {:>8} {:>8} {:>18}",
        "group", "requests", "fuel", "fuel/req", "ops", "dictfeeds", "wall us", "allocs", "digest"
    );
    for g in ledger.top_groups_by_fuel(10) {
        println!(
            "    {:>6} {:>8} {:>10} {:>10} {:>8} {:>10} {:>8} {:>8} {:>18x}",
            g.group,
            g.requests,
            g.fuel,
            g.fuel / g.requests.max(1),
            g.uniform_ops + g.expanded_ops,
            g.dict_feeds,
            g.wall_us,
            g.alloc_events,
            g.digest,
        );
    }

    println!("\n  by handler tree (control-flow digest):");
    println!(
        "    {:>18} {:>8} {:>10} {:>12} {:>10}",
        "digest", "groups", "requests", "fuel", "ops"
    );
    for (digest, groups, requests, fuel, ops) in ledger.by_digest() {
        println!("    {digest:>18x} {groups:>8} {requests:>10} {fuel:>12} {ops:>10}");
    }

    if !ledger.requests.is_empty() {
        let mut rows = ledger.requests.clone();
        rows.sort_by(|a, b| b.fuel.cmp(&a.fuel).then(a.rid.cmp(&b.rid)));
        rows.truncate(10);
        println!("\n  top served requests by fuel (server-side, advisory):");
        println!(
            "    {:>6} {:>12} {:>8} {:>10}",
            "rid", "activations", "ops", "fuel"
        );
        for r in rows {
            println!(
                "    {:>6} {:>12} {:>8} {:>10}",
                r.rid, r.activations, r.ops, r.fuel
            );
        }
    }
}

fn read_or_die(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_or_die(path: &str) -> bench::json::Value {
    match bench::json::parse(&read_or_die(path)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e}");
            std::process::exit(1);
        }
    }
}

/// `diff <a.json> <b.json> [--threshold-pct X]`: per-counter deltas
/// between two machine-readable exports. Every numeric leaf is
/// flattened to a dotted path; leaves present in only one file count
/// as differences. Exits nonzero when a threshold is set and any
/// relative delta exceeds it.
fn diff(o: &Opts) {
    let [a_path, b_path] = o.positional.as_slice() else {
        eprintln!("usage: harness diff <a.json> <b.json> [--threshold-pct X]");
        std::process::exit(2);
    };
    let a = bench::json::flatten_numbers(&parse_or_die(a_path));
    let b = bench::json::flatten_numbers(&parse_or_die(b_path));
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let mut changed = 0usize;
    let mut breached = 0usize;
    println!("== diff: {a_path} vs {b_path} ({} leaves) ==", keys.len());
    for key in keys {
        match (a.get(key), b.get(key)) {
            (Some(&va), Some(&vb)) => {
                if va == vb {
                    continue;
                }
                changed += 1;
                let delta = vb - va;
                let pct = if va != 0.0 {
                    delta / va.abs() * 100.0
                } else {
                    f64::INFINITY
                };
                let over = o.threshold_pct.map(|t| pct.abs() > t).unwrap_or(false);
                if over {
                    breached += 1;
                }
                println!(
                    "  {key}: {va} -> {vb} ({delta:+} = {pct:+.2}%){}",
                    if over { "  OVER THRESHOLD" } else { "" }
                );
            }
            (Some(&va), None) => {
                changed += 1;
                breached += usize::from(o.threshold_pct.is_some());
                println!("  {key}: {va} -> (absent in {b_path})");
            }
            (None, Some(&vb)) => {
                changed += 1;
                breached += usize::from(o.threshold_pct.is_some());
                println!("  {key}: (absent in {a_path}) -> {vb}");
            }
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }
    match o.threshold_pct {
        Some(t) if breached > 0 => {
            eprintln!("{changed} leaves differ; {breached} exceed the {t}% threshold");
            std::process::exit(1);
        }
        Some(t) => println!("  {changed} leaves differ; none exceed the {t}% threshold"),
        None => println!("  {changed} leaves differ"),
    }
}

/// `validate-metrics <schema.json> <metrics.json>`: the Rust
/// replacement for the retired `tools/validate_metrics.py`.
fn validate_metrics_cmd(o: &Opts) {
    let [schema_path, json_path] = o.positional.as_slice() else {
        eprintln!("usage: harness validate-metrics <schema.json> <metrics.json>");
        std::process::exit(2);
    };
    let schema = parse_or_die(schema_path);
    let value = parse_or_die(json_path);
    let errors = bench::json::validate_schema(&value, &schema);
    if errors.is_empty() {
        println!("{json_path}: conforms to {schema_path}");
    } else {
        for e in &errors {
            eprintln!("schema violation: {e}");
        }
        std::process::exit(1);
    }
}

/// `validate-json <file.json>`: the file parses as one JSON document.
fn validate_json_cmd(o: &Opts) {
    let [path] = o.positional.as_slice() else {
        eprintln!("usage: harness validate-json <file.json>");
        std::process::exit(2);
    };
    let _ = parse_or_die(path);
    println!("{path}: valid JSON");
}

/// `validate-prom <prom.txt>`: the file is a well-formed Prometheus
/// text-format 0.0.4 exposition (TYPE lines, cumulative `le` buckets,
/// counter/gauge sign conventions).
fn validate_prom_cmd(o: &Opts) {
    let [path] = o.positional.as_slice() else {
        eprintln!("usage: harness validate-prom <prom.txt>");
        std::process::exit(2);
    };
    let text = read_or_die(path);
    match obs::check_exposition(&text) {
        Ok(()) => println!("{path}: well-formed Prometheus exposition"),
        Err(e) => {
            eprintln!("{path}: bad exposition: {e}");
            std::process::exit(1);
        }
    }
}

/// Curated `trend` rows: which leaves of a known evidence file to
/// surface, and under what label. Files themselves are *discovered*
/// by globbing `BENCH_PR<digits>.json` (see [`trend`]); this table
/// only decorates the ones with hand-picked headline metrics.
/// Discovered files without curated rows fall back to their top-level
/// scalar leaves, so future evidence files show up without a harness
/// change.
const TREND_ROWS: &[(&str, &str, &str)] = &[
    (
        "BENCH_PR3.json",
        "replay allocs/op (uniform n=64)",
        "uniform_microbench/allocs_per_op",
    ),
    (
        "BENCH_PR3.json",
        "alloc reduction vs name-based interpreter",
        "uniform_microbench/reduction_factor",
    ),
    (
        "BENCH_PR4.json",
        "wiki obs-enabled audit overhead %",
        "apps/2/obs_overhead_pct",
    ),
    (
        "BENCH_PR5.json",
        "decode alloc reduction (zero-copy view)",
        "decode/view_reduction_factor",
    ),
    (
        "BENCH_PR5.json",
        "decode alloc reduction (fast path)",
        "decode/fast_reduction_factor",
    ),
    (
        "BENCH_PR5.json",
        "configs bit-identical",
        "configs_bit_identical",
    ),
    (
        "BENCH_PR6.json",
        "fuel metering overhead %",
        "metering_overhead_pct",
    ),
    (
        "BENCH_PR6.json",
        "honest wiki fuel bill",
        "honest_fuel_spent",
    ),
    (
        "BENCH_PR7.json",
        "bytecode VM best replay speedup",
        "target/best_speedup",
    ),
    (
        "BENCH_PR7.json",
        "bytecode VM best alloc reduction",
        "target/best_alloc_reduction",
    ),
    (
        "BENCH_PR7.json",
        "configs bit-identical",
        "configs_bit_identical",
    ),
    ("BENCH_PR8.json", "persistent-value gates met", "target/met"),
    (
        "BENCH_PR8.json",
        "configs bit-identical",
        "configs_bit_identical",
    ),
    (
        "BENCH_PR10.json",
        "borrowed decode alloc reduction (10k req)",
        "sizes/1/decode_allocs/borrowed_reduction_factor",
    ),
    (
        "BENCH_PR10.json",
        "mmap peak-RSS reduction KB (10k req)",
        "rss_at_large/mmap_reduction_kb",
    ),
    ("BENCH_PR10.json", "borrowed-advice gates met", "gates/met"),
    (
        "BENCH_PR10.json",
        "configs bit-identical",
        "configs_bit_identical",
    ),
];

/// The PR number of a `BENCH_PR<digits>.json` file name, or `None` if
/// the name is not an evidence file.
fn bench_pr_number(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("BENCH_PR")?.strip_suffix(".json")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Renders one trend leaf: booleans verbatim, integers plain, floats
/// to two places, anything else as `?`.
fn render_trend_leaf(v: Option<&bench::json::Value>) -> String {
    match v {
        Some(bench::json::Value::Bool(b)) => b.to_string(),
        Some(v) => match v.as_f64() {
            Some(n) if n.fract() == 0.0 => format!("{n}"),
            Some(n) => format!("{n:.2}"),
            None => "?".to_string(),
        },
        None => "?".to_string(),
    }
}

/// `trend`: aggregates the committed `BENCH_PR*.json` evidence files
/// into one markdown trajectory table (the copy committed to
/// EXPERIMENTS.md §"Performance trajectory"). Evidence files are
/// discovered by glob — `BENCH_PR<digits>.json` in the working
/// directory, ascending by PR number, tolerating gaps in the sequence
/// (not every PR ships a benchmark). Files with curated
/// [`TREND_ROWS`] show those; others show their top-level scalar
/// leaves.
fn trend() {
    println!("| evidence file | metric | value |");
    println!("|---|---|---|");
    let mut found: Vec<(u64, String)> = Vec::new();
    if let Ok(dir) = std::fs::read_dir(".") {
        for entry in dir.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(n) = bench_pr_number(&name) {
                found.push((n, name));
            }
        }
    }
    found.sort();
    if found.is_empty() {
        eprintln!("note: no BENCH_PR*.json evidence files in the working directory");
        return;
    }
    for (_, file) in &found {
        let doc = std::fs::read_to_string(file)
            .ok()
            .and_then(|s| bench::json::parse(&s).ok());
        let Some(doc) = doc else {
            eprintln!("note: {file} is unreadable or not JSON; rows skipped");
            continue;
        };
        let curated: Vec<&(&str, &str, &str)> =
            TREND_ROWS.iter().filter(|(f, _, _)| *f == file).collect();
        if curated.is_empty() {
            // No curated rows for this file (a future PR's evidence):
            // surface its top-level scalar leaves so it still shows up.
            if let bench::json::Value::Obj(members) = &doc {
                for (key, value) in members {
                    if matches!(
                        value,
                        bench::json::Value::Bool(_)
                            | bench::json::Value::Int(_)
                            | bench::json::Value::Float(_)
                    ) {
                        println!("| {file} | {key} | {} |", render_trend_leaf(Some(value)));
                    }
                }
            }
        } else {
            for &&(_, label, path) in &curated {
                println!("| {file} | {label} | {} |", render_trend_leaf(doc.at(path)));
            }
        }
    }
}

/// `bench-pr4`: machine-readable evidence for the telemetry layer.
/// Writes `BENCH_PR4.json`: per-app audit wall-clock with observability
/// off vs on (the overhead the noop default avoids paying), the
/// per-phase breakdown, and the headline instruments (multivalue
/// collapse ratio, dictionary-fed reads, edge counts by kind,
/// cycle-check visits) from the instrumented run.
fn bench_pr4(o: &Opts) {
    use karousos::audit_with_obs;
    use obs::{CounterId, GaugeId, Obs};

    println!(
        "== bench-pr4: audit telemetry ({} requests, {} iters) ==",
        o.requests, o.iters
    );
    let mut apps_json = String::new();
    for (app, mix) in [
        (App::Motd, Mix::Mixed),
        (App::Stacks, Mix::Mixed),
        (App::Wiki, Mix::Wiki),
    ] {
        let p = bench::prepare(app, mix, o.requests, 8, o.seed);
        let opts = karousos::AuditOptions::with_threads(o.verify_threads);
        let (t_off, report) = bench::time_median(o.iters, || {
            audit_with_obs(
                &p.program,
                &p.trace,
                &p.karousos,
                p.exp.isolation,
                opts,
                &Obs::noop(),
            )
            .expect("honest advice must be accepted")
        });
        let obs = Obs::enabled();
        let (t_on, _) = bench::time_median(o.iters, || {
            audit_with_obs(
                &p.program,
                &p.trace,
                &p.karousos,
                p.exp.isolation,
                opts,
                &obs,
            )
            .expect("honest advice must be accepted")
        });
        let overhead_pct = (t_on.as_secs_f64() / t_off.as_secs_f64().max(1e-9) - 1.0) * 100.0;
        let m = obs.metrics_snapshot();
        // The enabled handle accumulated over `iters` runs; instruments
        // below are per-run.
        let iters = o.iters as u64;
        let c = |id: CounterId| m.counter(id) / iters.max(1);
        let uniform = c(CounterId::UniformOps);
        let expanded = c(CounterId::ExpandedOps);
        let collapse = uniform as f64 / (uniform + expanded).max(1) as f64;
        let edge_kinds = [
            CounterId::EdgesTime,
            CounterId::EdgesProgram,
            CounterId::EdgesBoundary,
            CounterId::EdgesActivation,
            CounterId::EdgesHandlerLog,
            CounterId::EdgesExternalWr,
            CounterId::EdgesVarWr,
            CounterId::EdgesVarWw,
            CounterId::EdgesVarRw,
        ];
        let edges_json = edge_kinds
            .iter()
            .map(|&k| format!("\"{}\": {}", k.name(), c(k)))
            .collect::<Vec<_>>()
            .join(", ");
        if !apps_json.is_empty() {
            apps_json.push_str(",\n");
        }
        apps_json.push_str(&format!(
            "    {{\"app\": \"{}\", \"mix\": \"{}\", \"requests\": {}, \"concurrency\": 8,\n     \
             \"audit_us_obs_off\": {}, \"audit_us_obs_on\": {}, \"obs_overhead_pct\": {:.1},\n     \
             \"phases\": {},\n     \
             \"metrics\": {{\"groups_formed\": {}, \"uniform_ops\": {uniform}, \
             \"expanded_ops\": {expanded}, \"collapse_ratio\": {collapse:.3}, \
             \"dict_feeds\": {}, \"logged_reads\": {}, \"cycle_check_visits\": {}, \
             \"graph_nodes\": {}, \"graph_edges\": {},\n       \
             \"edges\": {{{edges_json}}}}}}}",
            app.name(),
            mix.name(),
            o.requests,
            t_off.as_micros(),
            t_on.as_micros(),
            overhead_pct,
            report.timing.to_json(),
            c(CounterId::GroupsFormed),
            c(CounterId::DictFeeds),
            c(CounterId::LoggedReads),
            c(CounterId::CycleCheckVisits),
            m.gauge_value(GaugeId::GraphNodes).unwrap_or(0),
            m.gauge_value(GaugeId::GraphEdges).unwrap_or(0),
        ));
        println!(
            "  {:<7} obs off {} ms / on {} ms ({overhead_pct:+.1}%), collapse {collapse:.3}, \
             {} groups",
            app.name(),
            ms(t_off),
            ms(t_on),
            c(CounterId::GroupsFormed)
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"pr4-observability\",\n  \"verify_threads\": {},\n  \
         \"iters\": {},\n  \"apps\": [\n{apps_json}\n  ]\n}}\n",
        o.verify_threads, o.iters
    );
    if let Err(e) = std::fs::write("BENCH_PR4.json", &json) {
        eprintln!("failed to write BENCH_PR4.json: {e}");
        std::process::exit(1);
    }
    println!("  wrote BENCH_PR4.json");
}

/// `bench-pr5`: machine-readable evidence for the pipelined audit.
/// Writes `BENCH_PR5.json` with (a) decode-phase allocation counts for
/// the owned decoder vs the zero-copy view vs the end-to-end fast path
/// (plus bytes actually copied), and (b) per-phase audit wall-clocks
/// for every app across the {threads 1, 4} x {pipeline off, on}
/// matrix, asserting verdicts and structural metrics are bit-identical
/// across all four configurations. Exits nonzero if the decode
/// allocation budget is exceeded or any configuration diverges, so CI
/// can run it as a smoke test.
fn bench_pr5(o: &Opts) {
    use karousos::{audit_with_obs, AuditOptions};
    use obs::Obs;

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "== bench-pr5: pipelined audit ({} requests, {} iters, {cores} cores) ==",
        o.requests, o.iters
    );
    if cores <= 1 {
        // Same caveat EXPERIMENTS.md records for the PR 2 numbers: on a
        // single-core container the parallel/pipelined configurations
        // measure coordination overhead, not speedup.
        println!("  note: single-core runner; parallel configs measure overhead, not speedup");
    }

    // Decode-phase allocation microbenchmark (same pins as
    // tests/alloc_regression.rs, on the full-size wiki advice).
    let pw = bench::prepare(App::Wiki, Mix::Wiki, o.requests, 8, o.seed);
    let bytes = karousos::encode_advice(&pw.karousos);
    let _ = karousos::decode_advice(&bytes).expect("wiki advice decodes");
    let _ = karousos::decode_advice_view(&bytes).expect("wiki advice decodes");
    let _ = karousos::decode_advice_fast(&bytes).expect("wiki advice decodes");
    let (owned, owned_allocs) = count_allocs(|| karousos::decode_advice(&bytes));
    let owned = owned.expect("owned decode accepts");
    let (_, view_allocs) = count_allocs(|| karousos::decode_advice_view(&bytes).map(|_| ()));
    let (fast, fast_allocs) = count_allocs(|| karousos::decode_advice_fast(&bytes));
    let (fast, dstats) = fast.expect("fast decode accepts");
    assert_eq!(fast, owned, "decoders disagree on honest wiki advice");
    let owned_copied = karousos::owned_decode_copy_bytes(&owned);
    let view_reduction = owned_allocs as f64 / view_allocs.max(1) as f64;
    let fast_reduction = owned_allocs as f64 / fast_allocs.max(1) as f64;
    let decode_within_budget = view_allocs.saturating_mul(5) <= owned_allocs
        && fast_allocs.saturating_mul(2) <= owned_allocs
        && dstats.bytes_copied < owned_copied;
    println!(
        "  decode allocs: owned {owned_allocs}, view {view_allocs} ({view_reduction:.1}x fewer), \
         fast {fast_allocs} ({fast_reduction:.1}x fewer); copied {} of {} owned-path bytes",
        dstats.bytes_copied, owned_copied
    );

    // Phase matrix: {threads 1, 4} x {pipeline off, on}, per app.
    // Pipeline off at 1 thread is the PR 4 barrier audit — the
    // comparison baseline for the end-to-end improvement claim.
    let configs = [(1usize, false), (1, true), (4, false), (4, true)];
    let mut diverged = false;
    let mut apps_json = String::new();
    for (app, mix) in [
        (App::Motd, Mix::Mixed),
        (App::Stacks, Mix::Mixed),
        (App::Wiki, Mix::Wiki),
    ] {
        let p = bench::prepare(app, mix, o.requests, 8, o.seed);
        let mut baseline: Option<karousos::AuditReport> = None;
        let mut cfg_json = String::new();
        let mut totals = [std::time::Duration::ZERO; 4];
        let mut amdahl = String::new();
        for (slot, &(threads, pipeline)) in configs.iter().enumerate() {
            let mut opts = AuditOptions::with_threads(threads);
            opts.pipeline = pipeline;
            let (t, report) = bench::time_median(o.iters, || {
                audit_with_obs(
                    &p.program,
                    &p.trace,
                    &p.karousos,
                    p.exp.isolation,
                    opts,
                    &Obs::noop(),
                )
                .expect("honest advice must be accepted")
            });
            totals[slot] = t;
            match &baseline {
                None => baseline = Some(report),
                Some(b) => {
                    if b.reexec != report.reexec
                        || b.graph_nodes != report.graph_nodes
                        || b.graph_edges != report.graph_edges
                    {
                        eprintln!(
                            "DIVERGENCE: {} threads={threads} pipeline={pipeline} \
                             disagrees with serial barrier baseline",
                            app.name()
                        );
                        diverged = true;
                    }
                }
            }
            let ph = report.timing;
            // The Amdahl target from the issue: preprocess + graph
            // merge no longer exceeding group replay at 4 threads with
            // the pipeline on (meaningful on multi-core only).
            if app == App::Wiki && threads == 4 && pipeline {
                let serial_side = ph.preprocess + ph.graph_merge;
                amdahl = format!(
                    "  wiki amdahl check (4 threads, pipeline on): preprocess+graph_merge {} ms \
                     vs group_replay {} ms{}",
                    ms(serial_side),
                    ms(ph.group_replay),
                    if cores <= 1 {
                        " [single-core: not expected to hold]"
                    } else {
                        ""
                    }
                );
            }
            if !cfg_json.is_empty() {
                cfg_json.push_str(",\n");
            }
            cfg_json.push_str(&format!(
                "      {{\"threads\": {threads}, \"pipeline\": {pipeline}, \
                 \"audit_us\": {}, \"phases_us\": {}}}",
                t.as_micros(),
                ph.to_json()
            ));
        }
        // Improvement of the pipelined 4-thread audit over the PR 4
        // barrier audit at the same thread count.
        let improvement_pct =
            (1.0 - totals[3].as_secs_f64() / totals[2].as_secs_f64().max(1e-9)) * 100.0;
        if !apps_json.is_empty() {
            apps_json.push_str(",\n");
        }
        apps_json.push_str(&format!(
            "    {{\"app\": \"{}\", \"mix\": \"{}\", \"requests\": {}, \"concurrency\": 8,\n     \
             \"configs\": [\n{cfg_json}\n     ],\n     \
             \"pipeline_improvement_pct_at_4_threads\": {improvement_pct:.1}}}",
            app.name(),
            mix.name(),
            o.requests,
        ));
        println!(
            "  {:<7} t1 off {} / on {} ms, t4 off {} / on {} ms ({improvement_pct:+.1}% pipelined)",
            app.name(),
            ms(totals[0]),
            ms(totals[1]),
            ms(totals[2]),
            ms(totals[3]),
        );
        if !amdahl.is_empty() {
            println!("{amdahl}");
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"pr5-pipelined-audit\",\n  \"iters\": {},\n  \
         \"available_cores\": {cores},\n  \
         \"single_core_caveat\": {},\n  \
         \"decode\": {{\n    \"wire_bytes\": {},\n    \"owned_allocs\": {owned_allocs},\n    \
         \"view_allocs\": {view_allocs},\n    \"fast_allocs\": {fast_allocs},\n    \
         \"view_reduction_factor\": {view_reduction:.1},\n    \
         \"fast_reduction_factor\": {fast_reduction:.1},\n    \
         \"bytes_copied\": {},\n    \"owned_path_bytes_copied\": {owned_copied},\n    \
         \"budget\": {{\"view_min_reduction\": 5, \"fast_min_reduction\": 2, \
         \"within_budget\": {decode_within_budget}}}\n  }},\n  \
         \"configs_bit_identical\": {},\n  \"apps\": [\n{apps_json}\n  ]\n}}\n",
        o.iters,
        cores <= 1,
        bytes.len(),
        dstats.bytes_copied,
        !diverged,
    );
    if let Err(e) = std::fs::write("BENCH_PR5.json", &json) {
        eprintln!("failed to write BENCH_PR5.json: {e}");
        std::process::exit(1);
    }
    println!("  wrote BENCH_PR5.json");
    if !decode_within_budget {
        eprintln!(
            "DECODE ALLOCATION BUDGET EXCEEDED: owned {owned_allocs}, view {view_allocs} \
             (need >= 5x fewer), fast {fast_allocs} (need >= 2x fewer), copied {} vs {}",
            dstats.bytes_copied, owned_copied
        );
        std::process::exit(1);
    }
    if diverged {
        std::process::exit(1);
    }
}

/// `bench-pr6`: machine-readable evidence for resource governance.
/// Writes `BENCH_PR6.json` pinning (a) the fuel-metering overhead on an
/// honest wiki run — audit wall-clock under the default `Limits`
/// (metered) vs `Limits::unlimited()` (all budgets off), which must
/// stay within 5% — and (b) the metered audit's allocation count,
/// which must not exceed the unmetered one (the meter is two integer
/// fields, not a data structure). Also reports the honest run's fuel
/// bill and the headroom it leaves under the default budget. Exits
/// nonzero on any breach, so CI can run it as a smoke test.
fn bench_pr6(o: &Opts) {
    use karousos::{audit_with_obs, AuditOptions, Limits};
    use obs::Obs;

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "== bench-pr6: resource-governed audit ({} requests, {} iters, {cores} cores) ==",
        o.requests, o.iters
    );

    let p = bench::prepare(App::Wiki, Mix::Wiki, o.requests, 8, o.seed);
    let audit = |limits: Limits| {
        let mut opts = AuditOptions::with_threads(o.verify_threads.max(1));
        opts.limits = limits;
        audit_with_obs(
            &p.program,
            &p.trace,
            &p.karousos,
            p.exp.isolation,
            opts,
            &Obs::noop(),
        )
        .expect("honest advice must be accepted")
    };

    // Warm both paths once. The overhead is measured on interleaved
    // metered/unmetered pairs — the median of per-pair ratios — so
    // slow drift on a shared runner cancels instead of landing on one
    // side of a back-to-back comparison.
    let report = audit(Limits::default());
    let _ = audit(Limits::unlimited());
    let mut pairs: Vec<(std::time::Duration, std::time::Duration)> = (0..o.iters.max(3))
        .map(|_| {
            let t0 = std::time::Instant::now();
            let _ = audit(Limits::default());
            let tm = t0.elapsed();
            let t1 = std::time::Instant::now();
            let _ = audit(Limits::unlimited());
            (tm, t1.elapsed())
        })
        .collect();
    pairs.sort_by(|a, b| {
        let ra = a.0.as_secs_f64() / a.1.as_secs_f64().max(1e-9);
        let rb = b.0.as_secs_f64() / b.1.as_secs_f64().max(1e-9);
        ra.total_cmp(&rb)
    });
    let (t_metered, t_unmetered) = pairs[pairs.len() / 2];
    let overhead_pct =
        (t_metered.as_secs_f64() / t_unmetered.as_secs_f64().max(1e-9) - 1.0) * 100.0;
    let within_time_budget = overhead_pct <= 5.0;

    // Single-threaded audits for the allocation comparison: worker
    // scheduling perturbs counts by a handful of allocations, the
    // sequential path is deterministic.
    let seq_audit = |limits: Limits| {
        let mut opts = AuditOptions::with_threads(1);
        opts.limits = limits;
        audit_with_obs(
            &p.program,
            &p.trace,
            &p.karousos,
            p.exp.isolation,
            opts,
            &Obs::noop(),
        )
        .expect("honest advice must be accepted")
    };
    let (_, metered_allocs) = count_allocs(|| seq_audit(Limits::default()));
    let (_, unmetered_allocs) = count_allocs(|| seq_audit(Limits::unlimited()));
    // The fuel/deadline meter must be allocation-free: two counters and
    // an Instant, charged inline on the replay hot path.
    let within_alloc_budget = metered_allocs <= unmetered_allocs;

    let fuel = report.reexec.fuel_spent;
    let headroom = Limits::default()
        .replay_fuel
        .saturating_sub(report.reexec.max_group_fuel);
    println!(
        "  wiki audit: metered {} ms vs unmetered {} ms ({overhead_pct:+.1}% metering overhead)",
        ms(t_metered),
        ms(t_unmetered),
    );
    println!(
        "  allocs: metered {metered_allocs} vs unmetered {unmetered_allocs}; \
         fuel bill {fuel} steps, max group {} of {} budget",
        report.reexec.max_group_fuel,
        Limits::default().replay_fuel,
    );

    let json = format!(
        "{{\n  \"bench\": \"pr6-resource-governance\",\n  \"iters\": {},\n  \
         \"requests\": {},\n  \"available_cores\": {cores},\n  \
         \"metered_audit_us\": {},\n  \"unmetered_audit_us\": {},\n  \
         \"metering_overhead_pct\": {overhead_pct:.2},\n  \
         \"metered_allocs\": {metered_allocs},\n  \"unmetered_allocs\": {unmetered_allocs},\n  \
         \"honest_fuel_spent\": {fuel},\n  \"honest_max_group_fuel\": {},\n  \
         \"default_replay_fuel\": {},\n  \"fuel_headroom\": {headroom},\n  \
         \"budget\": {{\"max_overhead_pct\": 5.0, \"within_time_budget\": {within_time_budget}, \
         \"within_alloc_budget\": {within_alloc_budget}}}\n}}\n",
        o.iters,
        o.requests,
        t_metered.as_micros(),
        t_unmetered.as_micros(),
        report.reexec.max_group_fuel,
        Limits::default().replay_fuel,
    );
    if let Err(e) = std::fs::write("BENCH_PR6.json", &json) {
        eprintln!("failed to write BENCH_PR6.json: {e}");
        std::process::exit(1);
    }
    println!("  wrote BENCH_PR6.json");
    if !within_time_budget {
        eprintln!(
            "FUEL METERING OVERHEAD BUDGET EXCEEDED: {overhead_pct:+.1}% > 5% \
             (metered {} ms vs unmetered {} ms)",
            ms(t_metered),
            ms(t_unmetered)
        );
        std::process::exit(1);
    }
    if !within_alloc_budget {
        eprintln!(
            "METERING ALLOCATION REGRESSION: metered {metered_allocs} > unmetered {unmetered_allocs}"
        );
        std::process::exit(1);
    }
}

/// `bench-pr7`: machine-readable evidence for the bytecode VM.
/// Writes `BENCH_PR7.json` comparing tree-walk vs bytecode replay on
/// the real apps (motd, stacks, wiki): replay-phase wall-clock measured
/// on interleaved pairs (median of per-pair ratios, so runner drift
/// cancels), replay-phase allocation events, and fuel bills — which
/// must be bit-identical between the two interpreters. Also audits
/// every app across the full threads{1,4} × pipeline{off,on} ×
/// bytecode{off,on} matrix and asserts verdicts and structural metrics
/// never diverge. Exits nonzero on divergence, on a fuel-bill
/// mismatch, or if the VM is slower than the tree-walk anywhere, so CI
/// can run it as a smoke test.
fn bench_pr7(o: &Opts) {
    use karousos::{audit_with_obs, AuditOptions};
    use obs::Obs;

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "== bench-pr7: bytecode-VM replay ({} requests, {} iters, {cores} cores) ==",
        o.requests, o.iters
    );

    let mut diverged = false;
    let mut regressed = false;
    let mut best_speedup = 0f64;
    let mut best_alloc_reduction = 0f64;
    let mut apps_json = String::new();
    for (app, mix) in [
        (App::Motd, Mix::Mixed),
        (App::Stacks, Mix::Mixed),
        (App::Wiki, Mix::Wiki),
    ] {
        let p = bench::prepare(app, mix, o.requests, 8, o.seed);

        // Full-matrix bit-identity: the serial tree-walk barrier audit
        // is the baseline every other configuration must reproduce
        // exactly (stats, fuel bill, graph shape).
        let mut baseline: Option<karousos::AuditReport> = None;
        for threads in [1usize, 4] {
            for pipeline in [false, true] {
                for bytecode in [false, true] {
                    let mut opts = AuditOptions::with_threads(threads);
                    opts.pipeline = pipeline;
                    opts.bytecode = bytecode;
                    let report = audit_with_obs(
                        &p.program,
                        &p.trace,
                        &p.karousos,
                        p.exp.isolation,
                        opts,
                        &Obs::noop(),
                    )
                    .expect("honest advice must be accepted");
                    match &baseline {
                        None => baseline = Some(report),
                        Some(b) => {
                            if b.reexec != report.reexec
                                || b.graph_nodes != report.graph_nodes
                                || b.graph_edges != report.graph_edges
                            {
                                eprintln!(
                                    "DIVERGENCE: {} threads={threads} pipeline={pipeline} \
                                     bytecode={bytecode} disagrees with tree-walk baseline",
                                    app.name()
                                );
                                diverged = true;
                            }
                        }
                    }
                }
            }
        }

        // Replay-phase comparison: preprocess once, then run the group
        // replay alone with each interpreter. Interleaved pairs so slow
        // drift on a shared runner lands on both sides.
        let advice = karousos::AdviceRef::from_advice(&p.karousos);
        let pre = karousos::verifier::preprocess(&p.program, &p.trace, &advice, p.exp.isolation)
            .expect("preprocess accepts honest advice");
        let replay = |bytecode: bool| {
            let mut vars = karousos::verifier::VarStates::new();
            karousos::verifier::init_vars(&p.program, &mut vars);
            karousos::verifier::ReExecutor::new(&p.program, &p.trace, &advice, &pre, &mut vars)
                .with_bytecode(bytecode)
                .run()
                .expect("replay accepts honest advice")
        };
        let stats_tw = replay(false);
        let stats_bc = replay(true);
        if stats_tw.fuel_spent != stats_bc.fuel_spent
            || stats_tw.max_group_fuel != stats_bc.max_group_fuel
        {
            eprintln!(
                "FUEL MISMATCH: {} tree-walk {} vs bytecode {} \
                 (max group {} vs {})",
                app.name(),
                stats_tw.fuel_spent,
                stats_bc.fuel_spent,
                stats_tw.max_group_fuel,
                stats_bc.max_group_fuel
            );
            diverged = true;
        }
        let (_, allocs_tw) = count_allocs(|| replay(false));
        let (_, allocs_bc) = count_allocs(|| replay(true));
        let mut pairs: Vec<(std::time::Duration, std::time::Duration)> = (0..o.iters.max(3))
            .map(|_| {
                let t0 = std::time::Instant::now();
                let _ = replay(false);
                let tw = t0.elapsed();
                let t1 = std::time::Instant::now();
                let _ = replay(true);
                (tw, t1.elapsed())
            })
            .collect();
        pairs.sort_by(|a, b| {
            let ra = a.0.as_secs_f64() / a.1.as_secs_f64().max(1e-9);
            let rb = b.0.as_secs_f64() / b.1.as_secs_f64().max(1e-9);
            ra.total_cmp(&rb)
        });
        let (t_tw, t_bc) = pairs[pairs.len() / 2];
        let speedup = t_tw.as_secs_f64() / t_bc.as_secs_f64().max(1e-9);
        let alloc_reduction = allocs_tw as f64 / allocs_bc.max(1) as f64;
        // Guard against real regressions only: motd replay is
        // advice-check-dominated (fuel bill ~4k vs stacks' ~250k), so
        // its ratio sits within measurement noise of 1.0 either way.
        if speedup < 0.9 {
            eprintln!(
                "REPLAY REGRESSION: {} bytecode {} ms slower than tree-walk {} ms",
                app.name(),
                ms(t_bc),
                ms(t_tw)
            );
            regressed = true;
        }
        if app == App::Stacks || app == App::Wiki {
            best_speedup = best_speedup.max(speedup);
            best_alloc_reduction = best_alloc_reduction.max(alloc_reduction);
        }
        let ops: u64 = p.karousos.opcounts.values().map(|&c| c as u64).sum();
        if !apps_json.is_empty() {
            apps_json.push_str(",\n");
        }
        apps_json.push_str(&format!(
            "    {{\"app\": \"{}\", \"mix\": \"{}\", \"requests\": {}, \"concurrency\": 8,\n     \
             \"replay_us_tree_walk\": {}, \"replay_us_bytecode\": {}, \
             \"replay_speedup\": {speedup:.2},\n     \
             \"replay_allocs_tree_walk\": {allocs_tw}, \"replay_allocs_bytecode\": {allocs_bc}, \
             \"alloc_reduction\": {alloc_reduction:.2},\n     \
             \"replayed_ops\": {ops}, \
             \"allocs_per_op_tree_walk\": {:.3}, \"allocs_per_op_bytecode\": {:.3},\n     \
             \"fuel_spent\": {}, \"max_group_fuel\": {}, \"fuel_bit_identical\": {}}}",
            app.name(),
            mix.name(),
            o.requests,
            t_tw.as_micros(),
            t_bc.as_micros(),
            allocs_tw as f64 / ops.max(1) as f64,
            allocs_bc as f64 / ops.max(1) as f64,
            stats_bc.fuel_spent,
            stats_bc.max_group_fuel,
            stats_tw.fuel_spent == stats_bc.fuel_spent,
        ));
        println!(
            "  {:<7} replay: tree-walk {} ms / {allocs_tw} allocs vs \
             bytecode {} ms / {allocs_bc} allocs ({speedup:.2}x wall, \
             {alloc_reduction:.2}x fewer allocs); fuel {}",
            app.name(),
            ms(t_tw),
            ms(t_bc),
            stats_bc.fuel_spent,
        );
    }

    let target_met = best_speedup >= 1.5 && best_alloc_reduction >= 3.0;
    let json = format!(
        "{{\n  \"bench\": \"pr7-bytecode-vm\",\n  \"iters\": {},\n  \
         \"requests\": {},\n  \"available_cores\": {cores},\n  \
         \"matrix\": \"threads{{1,4}} x pipeline{{off,on}} x bytecode{{off,on}}\",\n  \
         \"configs_bit_identical\": {},\n  \
         \"target\": {{\"min_speedup\": 1.5, \"min_alloc_reduction\": 3.0, \
         \"scope\": \"stacks|wiki\", \"best_speedup\": {best_speedup:.2}, \
         \"best_alloc_reduction\": {best_alloc_reduction:.2}, \"met\": {target_met}}},\n  \
         \"apps\": [\n{apps_json}\n  ]\n}}\n",
        o.iters, o.requests, !diverged,
    );
    if let Err(e) = std::fs::write("BENCH_PR7.json", &json) {
        eprintln!("failed to write BENCH_PR7.json: {e}");
        std::process::exit(1);
    }
    println!("  wrote BENCH_PR7.json");
    if diverged || regressed {
        std::process::exit(1);
    }
}

/// Frozen PR 7 replay baselines (BENCH_PR7.json, 600 requests, seed
/// default): per-op allocation events and fuel bills under the old
/// `Arc<BTreeMap>`/`Arc<Vec>` value representation. Allocs are compared
/// per op so a different `--requests` stays roughly comparable; fuel is
/// asserted bit-identical only at the baseline's request count.
struct Pr7Baseline {
    app: App,
    allocs_per_op_tree_walk: f64,
    allocs_per_op_bytecode: f64,
    fuel_spent_at_600: u64,
}

const PR7_BASELINES: [Pr7Baseline; 3] = [
    Pr7Baseline {
        app: App::Motd,
        allocs_per_op_tree_walk: 23.561,
        allocs_per_op_bytecode: 23.557,
        fuel_spent_at_600: 3800,
    },
    Pr7Baseline {
        app: App::Stacks,
        allocs_per_op_tree_walk: 8.320,
        allocs_per_op_bytecode: 7.895,
        fuel_spent_at_600: 389_404,
    },
    Pr7Baseline {
        app: App::Wiki,
        allocs_per_op_tree_walk: 7.423,
        allocs_per_op_bytecode: 7.409,
        fuel_spent_at_600: 110_173,
    },
];

/// `bench-pr8`: machine-readable evidence for the persistent value
/// representation (DESIGN.md §12). Writes `BENCH_PR8.json` comparing
/// replay-phase allocation events per op against the frozen PR 7
/// baselines above (the old representation cannot be re-measured in
/// this tree, so the comparison is against the committed numbers).
///
/// Gates, mirroring the PR's acceptance criteria:
/// * full threads{1,4} x pipeline{off,on} x bytecode{off,on} matrix
///   must stay bit-identical (verdicts, stats, graph shape);
/// * fuel bills must be bit-identical between interpreters, and — at
///   the baseline request count — bit-identical to PR 7's (fuel is
///   charged per AST node, so the representation change must not move
///   it);
/// * the map-update-dominated apps (wiki, motd) must replay with
///   fewer allocation events per op than PR 7 on both interpreters:
///   at least 3x on motd, whose replay was dominated by whole-map
///   clones, and at least 2x on wiki. Wiki's measured census caps it
///   below 3x: of its remaining ~3.5 allocs/op, roughly 45% is string
///   concatenation content and dependency-graph bookkeeping
///   (read-observer lists, write chains, group merge) that no value
///   representation can remove — container-attributable events alone
///   dropped ~4.5x. stacks is list-push-dominated: a push now copies
///   one chunk plus a short spine (more small *events*, O(CHUNK)
///   instead of O(n) copied bytes), so it gets the wall-clock guard
///   only — the bytecode VM must stay within 0.9x of the tree-walk.
///
/// Exits nonzero on any divergence or missed gate, so CI runs it as a
/// smoke leg.
fn bench_pr8(o: &Opts) {
    use karousos::{audit_with_obs, AuditOptions};
    use obs::Obs;

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "== bench-pr8: persistent value representation ({} requests, {} iters, {cores} cores) ==",
        o.requests, o.iters
    );

    let mut diverged = false;
    let mut regressed = false;
    let mut gate_met = true;
    let mut apps_json = String::new();
    for baseline in &PR7_BASELINES {
        let (app, mix) = (
            baseline.app,
            if baseline.app == App::Wiki {
                Mix::Wiki
            } else {
                Mix::Mixed
            },
        );
        let p = bench::prepare(app, mix, o.requests, 8, o.seed);

        // Full-matrix bit-identity: serial tree-walk is the reference.
        let mut reference: Option<karousos::AuditReport> = None;
        for threads in [1usize, 4] {
            for pipeline in [false, true] {
                for bytecode in [false, true] {
                    let mut opts = AuditOptions::with_threads(threads);
                    opts.pipeline = pipeline;
                    opts.bytecode = bytecode;
                    let report = audit_with_obs(
                        &p.program,
                        &p.trace,
                        &p.karousos,
                        p.exp.isolation,
                        opts,
                        &Obs::noop(),
                    )
                    .expect("honest advice must be accepted");
                    match &reference {
                        None => reference = Some(report),
                        Some(b) => {
                            if b.reexec != report.reexec
                                || b.graph_nodes != report.graph_nodes
                                || b.graph_edges != report.graph_edges
                            {
                                eprintln!(
                                    "DIVERGENCE: {} threads={threads} pipeline={pipeline} \
                                     bytecode={bytecode} disagrees with tree-walk baseline",
                                    app.name()
                                );
                                diverged = true;
                            }
                        }
                    }
                }
            }
        }

        // Replay-phase measurement: preprocess once, replay per
        // interpreter, count allocation events, then interleaved
        // wall-clock pairs (median ratio cancels runner drift).
        let advice = karousos::AdviceRef::from_advice(&p.karousos);
        let pre = karousos::verifier::preprocess(&p.program, &p.trace, &advice, p.exp.isolation)
            .expect("preprocess accepts honest advice");
        let replay = |bytecode: bool| {
            let mut vars = karousos::verifier::VarStates::new();
            karousos::verifier::init_vars(&p.program, &mut vars);
            karousos::verifier::ReExecutor::new(&p.program, &p.trace, &advice, &pre, &mut vars)
                .with_bytecode(bytecode)
                .run()
                .expect("replay accepts honest advice")
        };
        let stats_tw = replay(false);
        let stats_bc = replay(true);
        if stats_tw.fuel_spent != stats_bc.fuel_spent
            || stats_tw.max_group_fuel != stats_bc.max_group_fuel
        {
            eprintln!(
                "FUEL MISMATCH: {} tree-walk {} vs bytecode {}",
                app.name(),
                stats_tw.fuel_spent,
                stats_bc.fuel_spent,
            );
            diverged = true;
        }
        let fuel_matches_pr7 =
            o.requests != 600 || stats_tw.fuel_spent == baseline.fuel_spent_at_600;
        if !fuel_matches_pr7 {
            eprintln!(
                "FUEL DRIFT vs PR 7: {} spends {} fuel, baseline recorded {}",
                app.name(),
                stats_tw.fuel_spent,
                baseline.fuel_spent_at_600
            );
            diverged = true;
        }
        let (_, allocs_tw) = count_allocs(|| replay(false));
        let (_, allocs_bc) = count_allocs(|| replay(true));
        let mut pairs: Vec<(std::time::Duration, std::time::Duration)> = (0..o.iters.max(3))
            .map(|_| {
                let t0 = std::time::Instant::now();
                let _ = replay(false);
                let tw = t0.elapsed();
                let t1 = std::time::Instant::now();
                let _ = replay(true);
                (tw, t1.elapsed())
            })
            .collect();
        pairs.sort_by(|a, b| {
            let ra = a.0.as_secs_f64() / a.1.as_secs_f64().max(1e-9);
            let rb = b.0.as_secs_f64() / b.1.as_secs_f64().max(1e-9);
            ra.total_cmp(&rb)
        });
        let (t_tw, t_bc) = pairs[pairs.len() / 2];
        let vm_speedup = t_tw.as_secs_f64() / t_bc.as_secs_f64().max(1e-9);
        if vm_speedup < 0.9 {
            eprintln!(
                "REPLAY REGRESSION: {} bytecode {} ms slower than tree-walk {} ms",
                app.name(),
                ms(t_bc),
                ms(t_tw)
            );
            regressed = true;
        }

        let ops: u64 = p.karousos.opcounts.values().map(|&c| c as u64).sum();
        let per_op_tw = allocs_tw as f64 / ops.max(1) as f64;
        let per_op_bc = allocs_bc as f64 / ops.max(1) as f64;
        let reduction_tw = baseline.allocs_per_op_tree_walk / per_op_tw.max(1e-9);
        let reduction_bc = baseline.allocs_per_op_bytecode / per_op_bc.max(1e-9);
        // Per-app floors (see the fn doc comment): motd's replay was
        // clone-dominated, so 3x is demanded; wiki's alloc census is
        // ~45% strings + graph bookkeeping, capping any representation
        // change at ~2.2x total, so its gate sits at the 2x it can
        // honestly clear. stacks trades copied bytes for more (small)
        // events and is wall-clock-guarded instead.
        let min_reduction = match app {
            App::Motd => Some(3.0),
            App::Wiki => Some(2.0),
            _ => None,
        };
        let gated = min_reduction.is_some();
        if let Some(floor) = min_reduction {
            if reduction_tw < floor || reduction_bc < floor {
                eprintln!(
                    "ALLOC GATE MISSED: {} replays at {per_op_tw:.3}/{per_op_bc:.3} allocs/op \
                     (tree-walk/bytecode) vs PR 7 {:.3}/{:.3} — \
                     {reduction_tw:.2}x/{reduction_bc:.2}x, need >= {floor}x",
                    app.name(),
                    baseline.allocs_per_op_tree_walk,
                    baseline.allocs_per_op_bytecode,
                );
                gate_met = false;
            }
        }

        if !apps_json.is_empty() {
            apps_json.push_str(",\n");
        }
        apps_json.push_str(&format!(
            "    {{\"app\": \"{}\", \"mix\": \"{}\", \"requests\": {}, \"concurrency\": 8,\n     \
             \"replay_us_tree_walk\": {}, \"replay_us_bytecode\": {}, \
             \"vm_speedup\": {vm_speedup:.2},\n     \
             \"replay_allocs_tree_walk\": {allocs_tw}, \"replay_allocs_bytecode\": {allocs_bc}, \
             \"replayed_ops\": {ops},\n     \
             \"allocs_per_op_tree_walk\": {per_op_tw:.3}, \
             \"allocs_per_op_bytecode\": {per_op_bc:.3},\n     \
             \"pr7_allocs_per_op_tree_walk\": {:.3}, \"pr7_allocs_per_op_bytecode\": {:.3},\n     \
             \"alloc_reduction_tree_walk\": {reduction_tw:.2}, \
             \"alloc_reduction_bytecode\": {reduction_bc:.2}, \"alloc_gated\": {gated},\n     \
             \"fuel_spent\": {}, \"max_group_fuel\": {}, \
             \"fuel_bit_identical\": {}, \"fuel_matches_pr7\": {fuel_matches_pr7}}}",
            app.name(),
            mix.name(),
            o.requests,
            t_tw.as_micros(),
            t_bc.as_micros(),
            baseline.allocs_per_op_tree_walk,
            baseline.allocs_per_op_bytecode,
            stats_bc.fuel_spent,
            stats_bc.max_group_fuel,
            stats_tw.fuel_spent == stats_bc.fuel_spent,
        ));
        println!(
            "  {:<7} replay: {allocs_tw}/{allocs_bc} allocs (tree-walk/VM), \
             {per_op_tw:.3}/{per_op_bc:.3} per op vs PR 7 {:.3}/{:.3} \
             ({reduction_tw:.2}x/{reduction_bc:.2}x fewer); \
             {} ms / {} ms wall; fuel {}",
            app.name(),
            baseline.allocs_per_op_tree_walk,
            baseline.allocs_per_op_bytecode,
            ms(t_tw),
            ms(t_bc),
            stats_bc.fuel_spent,
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"pr8-persistent-values\",\n  \"iters\": {},\n  \
         \"requests\": {},\n  \"available_cores\": {cores},\n  \
         \"matrix\": \"threads{{1,4}} x pipeline{{off,on}} x bytecode{{off,on}}\",\n  \
         \"configs_bit_identical\": {},\n  \
         \"target\": {{\"min_alloc_reduction\": {{\"motd\": 3.0, \"wiki\": 2.0}}, \
         \"wiki_floor_note\": \"~45% of wiki replay allocs are string content + \
         dependency-graph bookkeeping outside the value representation; \
         container-attributable events dropped ~4.5x\", \
         \"met\": {gate_met}}},\n  \
         \"apps\": [\n{apps_json}\n  ]\n}}\n",
        o.iters, o.requests, !diverged,
    );
    if let Err(e) = std::fs::write("BENCH_PR8.json", &json) {
        eprintln!("failed to write BENCH_PR8.json: {e}");
        std::process::exit(1);
    }
    println!("  wrote BENCH_PR8.json");
    if diverged || regressed || !gate_met {
        std::process::exit(1);
    }
}

/// Peak resident set size (VmHWM) of this process in kilobytes, from
/// `/proc/self/status`. `None` off Linux or when `/proc` is
/// unreadable.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// Resets the kernel's peak-RSS watermark to the current RSS (writes
/// `5` to `/proc/self/clear_refs`), so a later [`peak_rss_kb`] covers
/// only work after the reset. Returns `false` where unsupported
/// (non-Linux, locked-down `/proc`).
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// The audit options shared by the mmap smoke test and bench-pr10.
fn file_audit_opts(o: &Opts) -> karousos::AuditOptions {
    let mut opts = karousos::AuditOptions::with_threads(o.verify_threads.max(1));
    opts.advice_mmap = o.advice_mmap;
    opts
}

/// A scratch advice file that cleans up after itself.
struct ScratchAdvice(std::path::PathBuf);

impl ScratchAdvice {
    fn write(tag: &str, bytes: &[u8]) -> ScratchAdvice {
        let path = std::env::temp_dir().join(format!(
            "karousos-harness-{tag}-{}.advice",
            std::process::id()
        ));
        if let Err(e) = std::fs::write(&path, bytes) {
            eprintln!("cannot write scratch advice file {}: {e}", path.display());
            std::process::exit(1);
        }
        ScratchAdvice(path)
    }
}

impl Drop for ScratchAdvice {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// `mmap-smoke`: the large-trace disk round-trip. Writes the wiki
/// advice (`--requests`, default 600; CI runs 10000) to a scratch
/// file, audits it through the read-backed source, the mapped source,
/// and the `--advice-mmap`-honoring file entry point, and requires
/// every verdict to match the in-memory baseline bit for bit. Exits
/// nonzero on any divergence.
fn mmap_smoke(o: &Opts) {
    use obs::Obs;

    println!(
        "== mmap-smoke: wiki {} requests, seed {}, advice_mmap flag {} ==",
        o.requests, o.seed, o.advice_mmap
    );
    let p = bench::prepare(App::Wiki, Mix::Wiki, o.requests, 8, o.seed);
    let opts = file_audit_opts(o);
    let baseline = karousos::audit_encoded_with_options(
        &p.program,
        &p.trace,
        &p.karousos_bytes,
        p.exp.isolation,
        opts,
    )
    .expect("honest wiki advice must be accepted");
    println!(
        "  in-memory baseline: {} groups, fuel {}, {} nodes / {} edges, {} wire bytes",
        baseline.reexec.groups,
        baseline.reexec.fuel_spent,
        baseline.graph_nodes,
        baseline.graph_edges,
        p.karousos_bytes.len()
    );

    let scratch = ScratchAdvice::write("mmap-smoke", &p.karousos_bytes);
    let mut diverged = false;
    let mut check = |label: &str, report: karousos::AuditReport| {
        let same = report.reexec == baseline.reexec
            && report.graph_nodes == baseline.graph_nodes
            && report.graph_edges == baseline.graph_edges;
        if same {
            println!("  {label}: verdict identical to in-memory baseline");
        } else {
            eprintln!("DIVERGENCE: {label} disagrees with the in-memory baseline");
            diverged = true;
        }
    };
    for use_mmap in [false, true] {
        let source = karousos::AdviceSource::open(&scratch.0, use_mmap).unwrap_or_else(|e| {
            eprintln!("cannot open advice source (mmap={use_mmap}): {e}");
            std::process::exit(1);
        });
        let label = if source.is_mmap() {
            "mapped source"
        } else {
            "read source"
        };
        let report = karousos::audit_source_with_obs(
            &p.program,
            &p.trace,
            &source,
            p.exp.isolation,
            opts,
            &Obs::noop(),
        )
        .expect("file-backed audit must accept honest advice");
        check(label, report);
    }
    let report =
        karousos::audit_file_with_options(&p.program, &p.trace, &scratch.0, p.exp.isolation, opts)
            .expect("file entry point must accept honest advice");
    check("audit_file_with_options", report);
    if diverged {
        std::process::exit(1);
    }
    println!("  mmap-smoke PASS");
}

/// `rss-probe <owned|memory|mmap>`: child-process half of the
/// bench-pr10 peak-RSS measurement. Prepares the wiki workload, parks
/// the advice in a scratch file, drops every in-memory copy, resets
/// the peak-RSS watermark, audits through the named path, and prints
/// one parseable line. One child per mode keeps the three paths'
/// allocator high-water marks from contaminating each other.
fn rss_probe(o: &Opts) {
    use obs::Obs;

    let mode = o
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or_default()
        .to_string();
    if !matches!(mode.as_str(), "owned" | "memory" | "mmap") {
        eprintln!("rss-probe requires a mode: owned, memory, or mmap");
        std::process::exit(2);
    }
    let p = bench::prepare(App::Wiki, Mix::Wiki, o.requests, 8, o.seed);
    let scratch = ScratchAdvice::write(&format!("rss-{mode}"), &p.karousos_bytes);
    let bench::Prepared {
        program,
        trace,
        exp,
        ..
    } = p; // advice + in-memory wire copies drop here
    let opts = file_audit_opts(o);
    let reset_ok = reset_peak_rss();
    let report = match mode.as_str() {
        "owned" => {
            let bytes = std::fs::read(&scratch.0).expect("scratch advice file reads");
            let (advice, _) = karousos::decode_advice_fast(&bytes).expect("advice decodes");
            karousos::audit_with_options(&program, &trace, &advice, exp.isolation, opts)
        }
        _ => {
            let source = karousos::AdviceSource::open(&scratch.0, mode == "mmap")
                .expect("advice source opens");
            karousos::audit_source_with_obs(
                &program,
                &trace,
                &source,
                exp.isolation,
                opts,
                &Obs::noop(),
            )
        }
    };
    let hwm = peak_rss_kb().unwrap_or(0);
    match report {
        Ok(r) => println!(
            "rss-probe mode={mode} hwm_kb={hwm} reset={reset_ok} groups={} fuel={} \
             nodes={} edges={}",
            r.reexec.groups, r.reexec.fuel_spent, r.graph_nodes, r.graph_edges
        ),
        Err(e) => {
            eprintln!("rss-probe mode={mode}: audit rejected honest advice: {e}");
            std::process::exit(1);
        }
    }
}

/// One parsed `rss-probe` line.
struct RssProbe {
    hwm_kb: u64,
    reset: bool,
    fingerprint: String,
}

/// Spawns `rss-probe <mode>` as a child process and parses its report
/// line. `None` when the child cannot run or its output is malformed
/// (the RSS gate is then skipped, not failed).
fn spawn_rss_probe(mode: &str, requests: usize, seed: u64, threads: usize) -> Option<RssProbe> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(exe)
        .args([
            "rss-probe",
            mode,
            "--requests",
            &requests.to_string(),
            "--seed",
            &seed.to_string(),
            "--verify-threads",
            &threads.to_string(),
        ])
        .output()
        .ok()?;
    if !out.status.success() {
        eprintln!(
            "rss-probe {mode} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        );
        return None;
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().find(|l| l.starts_with("rss-probe "))?;
    let mut hwm_kb = None;
    let mut reset = false;
    let mut fingerprint = Vec::new();
    for token in line.split_whitespace() {
        if let Some(v) = token.strip_prefix("hwm_kb=") {
            hwm_kb = v.parse().ok();
        } else if let Some(v) = token.strip_prefix("reset=") {
            reset = v == "true";
        } else if token.starts_with("groups=")
            || token.starts_with("fuel=")
            || token.starts_with("nodes=")
            || token.starts_with("edges=")
        {
            fingerprint.push(token.to_string());
        }
    }
    Some(RssProbe {
        hwm_kb: hwm_kb?,
        reset,
        fingerprint: fingerprint.join(" "),
    })
}

/// Decode-phase and wall-clock numbers for one trace size, plus the
/// JSON fragment they render to.
struct Pr10Row {
    json: String,
    decode_gate_met: bool,
    diverged: bool,
}

/// Measures one bench-pr10 size: decode-phase allocation events for
/// the owned / fast / borrowed decoders, end-to-end audit wall-clock
/// for the owned, borrowed, and mapped paths, and verdict equality
/// across all three.
fn bench_pr10_size(o: &Opts, requests: usize, iters: usize) -> Pr10Row {
    use obs::Obs;

    let p = bench::prepare(App::Wiki, Mix::Wiki, requests, 8, o.seed);
    let bytes = &p.karousos_bytes;
    let opts = file_audit_opts(o);

    // Decode phase: materializing `Advice` (plain and interning-fast)
    // vs the borrowed view + `AdviceRef` the accept path uses.
    let _ = karousos::decode_advice(bytes).expect("advice decodes");
    let _ = karousos::decode_advice_fast(bytes).expect("advice decodes");
    let (_, owned_allocs) = count_allocs(|| karousos::decode_advice(bytes).map(|_| ()));
    let (_, fast_allocs) = count_allocs(|| karousos::decode_advice_fast(bytes).map(|_| ()));
    let (_, borrowed_allocs) = count_allocs(|| {
        let view = karousos::decode_advice_view(bytes).expect("advice decodes");
        let mut interner = kem::ValueInterner::new();
        let advice = karousos::AdviceRef::from_view(&view, &mut interner);
        advice.tags.len()
    });
    let borrowed_reduction = owned_allocs as f64 / borrowed_allocs.max(1) as f64;
    let decode_gate_met = borrowed_allocs.saturating_mul(2) <= owned_allocs;

    // Wall-clock: the old accept path (fast decode into owned advice,
    // then audit) vs the borrowed accept path vs the mapped file.
    let scratch = ScratchAdvice::write(&format!("pr10-{requests}"), bytes);
    let (t_owned, r_owned) = bench::time_median(iters, || {
        let (advice, _) = karousos::decode_advice_fast(bytes).expect("advice decodes");
        karousos::audit_with_options(&p.program, &p.trace, &advice, p.exp.isolation, opts)
            .expect("honest advice must be accepted")
    });
    let (t_borrowed, r_borrowed) = bench::time_median(iters, || {
        karousos::audit_encoded_with_options(&p.program, &p.trace, bytes, p.exp.isolation, opts)
            .expect("honest advice must be accepted")
    });
    let (t_mmap, r_mmap) = bench::time_median(iters, || {
        let source =
            karousos::AdviceSource::open(&scratch.0, true).expect("mapped advice source opens");
        karousos::audit_source_with_obs(
            &p.program,
            &p.trace,
            &source,
            p.exp.isolation,
            opts,
            &Obs::noop(),
        )
        .expect("honest advice must be accepted")
    });
    let same = |r: &karousos::AuditReport| {
        r.reexec == r_owned.reexec
            && r.graph_nodes == r_owned.graph_nodes
            && r.graph_edges == r_owned.graph_edges
    };
    let diverged = !same(&r_borrowed) || !same(&r_mmap);
    if diverged {
        eprintln!("DIVERGENCE: owned / borrowed / mmap audits disagree at {requests} requests");
    }

    println!(
        "  {requests:>6} req: decode allocs owned {owned_allocs} / fast {fast_allocs} / \
         borrowed {borrowed_allocs} ({borrowed_reduction:.1}x fewer); audit owned {} / \
         borrowed {} / mmap {} ms",
        ms(t_owned),
        ms(t_borrowed),
        ms(t_mmap),
    );

    let json = format!(
        "{{\n      \"requests\": {requests},\n      \"wire_bytes\": {},\n      \
         \"decode_allocs\": {{\"owned\": {owned_allocs}, \"fast\": {fast_allocs}, \
         \"borrowed\": {borrowed_allocs}, \
         \"borrowed_reduction_factor\": {borrowed_reduction:.1}}},\n      \
         \"audit_us\": {{\"owned\": {}, \"borrowed\": {}, \"mmap\": {}}},\n      \
         \"verdicts_identical\": {}\n    }}",
        bytes.len(),
        t_owned.as_micros(),
        t_borrowed.as_micros(),
        t_mmap.as_micros(),
        !diverged,
    );
    Pr10Row {
        json,
        decode_gate_met,
        diverged,
    }
}

/// `bench-pr10`: machine-readable evidence for the borrowed advice
/// path. Writes `BENCH_PR10.json` with, at `--requests` (default 600)
/// and 10k requests: decode-phase allocation events (owned vs fast vs
/// borrowed view), end-to-end audit wall-clock (owned vs borrowed vs
/// mapped file), verdict equality across the three paths, and — via
/// per-mode child processes at the large size — peak RSS for the
/// owned, read-backed, and mapped audits. Gates: the borrowed decode
/// phase must allocate >= 2x fewer events than materializing `Advice`
/// at both sizes, and the mapped audit must peak below the read-backed
/// one (skipped where `/proc/self/clear_refs` is unavailable). Exits
/// nonzero when a gate fails or any verdict diverges.
fn bench_pr10(o: &Opts) {
    let small = o.requests;
    let large = o.requests.max(10_000);
    println!(
        "== bench-pr10: borrowed advice end-to-end (wiki {small} and {large} requests, \
         {} iters) ==",
        o.iters
    );
    let row_small = bench_pr10_size(o, small, o.iters);
    let row_large = bench_pr10_size(o, large, 1);

    // Peak RSS, one child process per path so the watermarks are
    // independent. The mapped run's advice stays on disk: its peak
    // must come in under the read-backed run's.
    let mut rss_json = "null".to_string();
    let mut rss_gate: Option<bool> = None;
    let probes: Vec<Option<RssProbe>> = ["owned", "memory", "mmap"]
        .iter()
        .map(|mode| spawn_rss_probe(mode, large, o.seed, o.verify_threads))
        .collect();
    if let [Some(owned), Some(memory), Some(mmap)] = &probes[..] {
        if owned.fingerprint != memory.fingerprint || owned.fingerprint != mmap.fingerprint {
            eprintln!("DIVERGENCE: rss-probe children disagree on the verdict");
            rss_gate = Some(false);
        }
        let supported = owned.reset && memory.reset && mmap.reset;
        if supported {
            rss_gate = Some(rss_gate.unwrap_or(true) && mmap.hwm_kb < memory.hwm_kb);
        } else {
            println!("  note: peak-RSS watermark reset unsupported here; RSS gate skipped");
        }
        println!(
            "  {large:>6} req: peak RSS owned {} KB / memory {} KB / mmap {} KB{}",
            owned.hwm_kb,
            memory.hwm_kb,
            mmap.hwm_kb,
            if supported { "" } else { " [no reset]" }
        );
        rss_json = format!(
            "{{\"owned_kb\": {}, \"memory_kb\": {}, \"mmap_kb\": {}, \
             \"mmap_reduction_kb\": {}, \"watermark_reset_supported\": {supported}}}",
            owned.hwm_kb,
            memory.hwm_kb,
            mmap.hwm_kb,
            memory.hwm_kb as i64 - mmap.hwm_kb as i64,
        );
    } else {
        println!("  note: rss-probe children unavailable; RSS comparison skipped");
    }

    let decode_met = row_small.decode_gate_met && row_large.decode_gate_met;
    let diverged = row_small.diverged || row_large.diverged;
    let met = decode_met && !diverged && rss_gate != Some(false);
    let json = format!(
        "{{\n  \"bench\": \"pr10-borrowed-advice\",\n  \"iters\": {},\n  \
         \"sizes\": [\n    {},\n    {}\n  ],\n  \
         \"rss_at_large\": {rss_json},\n  \
         \"configs_bit_identical\": {},\n  \
         \"gates\": {{\"decode_alloc_min_reduction\": 2, \"decode_alloc_met\": {decode_met}, \
         \"mmap_rss_reduced\": {}, \"met\": {met}}}\n}}\n",
        o.iters,
        row_small.json,
        row_large.json,
        !diverged,
        match rss_gate {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        },
    );
    if let Err(e) = std::fs::write("BENCH_PR10.json", &json) {
        eprintln!("failed to write BENCH_PR10.json: {e}");
        std::process::exit(1);
    }
    println!("  wrote BENCH_PR10.json");
    if !met {
        eprintln!(
            "BENCH-PR10 GATES FAILED: decode_alloc_met={decode_met}, diverged={diverged}, \
             rss_gate={rss_gate:?}"
        );
        std::process::exit(1);
    }
}

/// `--dump-bytecode <app>`: disassembles the compiled replay bytecode
/// of every function in the app's program (DESIGN.md §11) — blocks,
/// pc, fuel charge, and pool-resolved operands.
fn dump_bytecode(app_name: &str) {
    let Some(app) = App::ALL.iter().copied().find(|a| a.name() == app_name) else {
        eprintln!("--dump-bytecode: unknown app {app_name:?}; try motd, stacks, wiki");
        std::process::exit(2);
    };
    let program = app.program();
    let resolved = program.resolved();
    let code = program.code();
    for (func, fc) in resolved.functions.iter().zip(code.funcs.iter()) {
        print!(
            "{}",
            kem::bytecode::disassemble(fc, func, &resolved.interner)
        );
    }
}

fn main() {
    let o = parse_args();
    if let Some(app) = &o.dump_bytecode {
        dump_bytecode(app);
        return;
    }
    // File-driven subcommands first: they must not trigger a capture
    // even when --prom-out/--metrics-out/KAROUSOS_PROM_ADDR are set.
    match o.figure.as_str() {
        "diff" => return diff(&o),
        "validate-metrics" => return validate_metrics_cmd(&o),
        "validate-json" => return validate_json_cmd(&o),
        "validate-prom" => return validate_prom_cmd(&o),
        "trend" => return trend(),
        "rss-probe" => return rss_probe(&o),
        _ => {}
    }
    if o.verify_threads != 1
        && std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) == 1
    {
        eprintln!(
            "warning: --verify-threads {} requested but only one core is available; \
             parallel verification will add thread overhead without speedup",
            o.verify_threads
        );
    }
    if o.figure == "report" {
        report(&o);
        return;
    }
    if o.obs_out.is_some() || o.metrics_out.is_some() || o.prom_out.is_some() {
        obs_capture(&o);
        // Without an explicit figure, the capture is the whole job.
        if !o.figure_explicit {
            return;
        }
    }
    match o.figure.as_str() {
        "fig6" => fig6(&o),
        "fig7" => fig7(&o),
        "fig8" => fig8(&o),
        "fig9" => fig_triple(9, App::Motd, Mix::Mixed, &o),
        "fig10" => fig_triple(10, App::Motd, Mix::ReadHeavy, &o),
        "fig11" => fig_triple(11, App::Stacks, Mix::Mixed, &o),
        "fig12" => fig_triple(12, App::Stacks, Mix::WriteHeavy, &o),
        "ratios" => ratios(&o),
        "errorbars" => errorbars(&o),
        "ablations" => ablations(&o),
        "bench-pr3" => bench_pr3(&o),
        "bench-pr4" => bench_pr4(&o),
        "bench-pr5" => bench_pr5(&o),
        "bench-pr6" => bench_pr6(&o),
        "bench-pr7" => bench_pr7(&o),
        "bench-pr8" => bench_pr8(&o),
        "bench-pr10" => bench_pr10(&o),
        "mmap-smoke" => mmap_smoke(&o),
        "all" => {
            fig6(&o);
            fig7(&o);
            fig8(&o);
            fig_triple(9, App::Motd, Mix::Mixed, &o);
            fig_triple(10, App::Motd, Mix::ReadHeavy, &o);
            fig_triple(11, App::Stacks, Mix::Mixed, &o);
            fig_triple(12, App::Stacks, Mix::WriteHeavy, &o);
            ratios(&o);
        }
        other => {
            eprintln!(
                "unknown figure {other:?}; try fig6..fig12, ratios, errorbars, ablations, \
                 bench-pr3, bench-pr4, bench-pr5, bench-pr6, bench-pr7, bench-pr8, bench-pr10, \
                 mmap-smoke, report, diff, validate-metrics, validate-json, validate-prom, \
                 trend, all"
            );
            std::process::exit(2);
        }
    }
}
