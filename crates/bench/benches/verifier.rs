//! Criterion bench for Figure 7: verification time — Karousos vs the
//! Orochi-JS and sequential re-execution baselines.

use apps::App;
use baselines::sequential_reexecute;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use karousos::{audit_encoded, audit_encoded_with_options, AuditOptions};
use workload::Mix;

const REQUESTS: usize = 120;
const CONCURRENCY: usize = 8;
const PAR_THREADS: usize = 4;

fn bench_app(c: &mut Criterion, app: App, mix: Mix) {
    let p = bench::prepare(app, mix, REQUESTS, CONCURRENCY, 1);
    let mut group = c.benchmark_group(format!("fig7/{}", app.name()));
    group.bench_function(BenchmarkId::new("karousos", mix.name()), |b| {
        b.iter(|| audit_encoded(&p.program, &p.trace, &p.karousos_bytes, p.exp.isolation).unwrap())
    });
    group.bench_function(
        BenchmarkId::new(format!("karousos-par{PAR_THREADS}"), mix.name()),
        |b| {
            b.iter(|| {
                audit_encoded_with_options(
                    &p.program,
                    &p.trace,
                    &p.karousos_bytes,
                    p.exp.isolation,
                    AuditOptions::with_threads(PAR_THREADS),
                )
                .unwrap()
            })
        },
    );
    group.bench_function(BenchmarkId::new("orochi-js", mix.name()), |b| {
        b.iter(|| audit_encoded(&p.program, &p.trace, &p.orochi_bytes, p.exp.isolation).unwrap())
    });
    group.bench_function(BenchmarkId::new("sequential", mix.name()), |b| {
        b.iter(|| sequential_reexecute(&p.program, &p.trace, p.exp.isolation).unwrap())
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_app(c, App::Motd, Mix::WriteHeavy);
    bench_app(c, App::Stacks, Mix::ReadHeavy);
    bench_app(c, App::Wiki, Mix::Wiki);
}

criterion_group! {
    name = fig7;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig7);
