//! Time-to-REJECT for hostile advice.
//!
//! The audit's cost model (§6.2) is stated for honest advice; this
//! bench measures the *adversarial* path: how quickly the verifier
//! disposes of tampered advice. Wire-level corruption (truncation, bit
//! flips) should reject at decode time — far cheaper than an accept —
//! while semantic mutations pay for preprocessing or partial
//! re-execution before the defense fires. A regression that makes
//! rejection as expensive as acceptance is a denial-of-audit vector.

use apps::App;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use karousos::{audit_encoded, Mutator, WireMutator};
use workload::Mix;

const REQUESTS: usize = 60;
const CONCURRENCY: usize = 8;

fn bench_rejection(c: &mut Criterion) {
    let p = bench::prepare(App::Motd, Mix::WriteHeavy, REQUESTS, CONCURRENCY, 1);
    let isolation = p.exp.isolation;

    // Baseline: what an ACCEPT of the same advice costs.
    let mut group = c.benchmark_group("reject/motd");
    group.bench_function("accept-honest", |b| {
        b.iter(|| {
            audit_encoded(&p.program, &p.trace, &p.karousos_bytes, isolation)
                .expect("honest advice accepts")
        })
    });

    // Wire-level mutants: rejection should happen in the decoder.
    for (name, wm) in [
        ("truncated", WireMutator::Truncate),
        ("bit-flipped", WireMutator::BitFlip),
        ("length-inflated", WireMutator::InflateLength),
    ] {
        let mutant = wm
            .apply(&p.karousos_bytes, 1)
            .expect("wire mutator applies")
            .bytes;
        group.bench_function(name, |b| {
            b.iter(|| black_box(audit_encoded(&p.program, &p.trace, &mutant, isolation)))
        });
    }

    // Semantic mutants: rejection happens in preprocess (duplicate
    // coordinate) or during re-execution (forged value).
    for (name, m) in [
        ("duplicate-log-entry", Mutator::DuplicateHandlerLogEntry),
        ("forged-var-write", Mutator::ForgeVarWriteValue),
        ("corrupt-opcount", Mutator::CorruptOpcount),
    ] {
        let Some(mutant) = m.apply(&p.karousos, 1) else {
            continue;
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(audit_encoded(
                    &p.program,
                    &p.trace,
                    &mutant.bytes,
                    isolation,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = rejection;
    config = Criterion::default().sample_size(10);
    targets = bench_rejection
}
criterion_main!(rejection);
