//! Criterion bench for Figure 6: server processing time with and
//! without advice collection, per application.
//!
//! The harness binary (`cargo run -p bench --bin harness -- fig6`)
//! prints the full sweep; this bench gives statistically robust
//! per-configuration numbers for the three headline workloads.

use apps::App;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use karousos::{run_instrumented_server_encoded, CollectorMode};
use kem::NoopHooks;
use workload::{Experiment, Mix};

const REQUESTS: usize = 120;
const CONCURRENCY: usize = 8;

fn bench_app(c: &mut Criterion, app: App, mix: Mix) {
    let mut exp = Experiment::paper_default(app, mix, CONCURRENCY, 1);
    exp.requests = REQUESTS;
    let program = app.program();
    let inputs = exp.inputs();
    let cfg = exp.server_config();

    let mut group = c.benchmark_group(format!("fig6/{}", app.name()));
    group.bench_function(BenchmarkId::new("unmodified", mix.name()), |b| {
        b.iter(|| kem::run_server(&program, &inputs, &cfg, &mut NoopHooks).unwrap())
    });
    group.bench_function(BenchmarkId::new("karousos", mix.name()), |b| {
        b.iter(|| {
            run_instrumented_server_encoded(&program, &inputs, &cfg, CollectorMode::Karousos)
                .unwrap()
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_app(c, App::Motd, Mix::WriteHeavy);
    bench_app(c, App::Stacks, Mix::ReadHeavy);
    bench_app(c, App::Wiki, Mix::Wiki);
}

criterion_group! {
    name = fig6;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig6);
