//! Criterion bench for Figure 8's machinery: advice encoding and
//! decoding throughput (the bytes measured in Fig. 8 cross this codec).

use apps::App;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use karousos::{decode_advice, encode_advice};
use workload::Mix;

const REQUESTS: usize = 120;
const CONCURRENCY: usize = 8;

fn bench_app(c: &mut Criterion, app: App, mix: Mix) {
    let p = bench::prepare(app, mix, REQUESTS, CONCURRENCY, 1);
    let bytes = encode_advice(&p.karousos);
    let mut group = c.benchmark_group(format!("fig8/{}", app.name()));
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function(BenchmarkId::new("encode", mix.name()), |b| {
        b.iter(|| encode_advice(&p.karousos))
    });
    group.bench_function(BenchmarkId::new("decode", mix.name()), |b| {
        b.iter(|| decode_advice(&bytes).unwrap())
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_app(c, App::Motd, Mix::WriteHeavy);
    bench_app(c, App::Wiki, Mix::Wiki);
}

criterion_group! {
    name = fig8;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig8);
