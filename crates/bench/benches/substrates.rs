//! Microbenches for the substrates the Karousos algorithms sit on:
//! the transactional store, Adya isolation checking, R-order testing,
//! and execution-graph cycle detection. These quantify the ablation
//! costs called out in DESIGN.md (per-operation bookkeeping vs
//! application work).

use criterion::{criterion_group, criterion_main, Criterion};
use karousos::r_precedes;
use kem::{FunctionId, HandlerId, OpRef, RequestId};
use kvstore::{IsolationLevel, Store};

fn bench_store(c: &mut Criterion) {
    c.bench_function("kvstore/put-get-commit", |b| {
        b.iter(|| {
            let mut s: Store<i64> = Store::new(IsolationLevel::Serializable);
            for i in 0..100 {
                let t = s.begin();
                s.put(t, "k", i, 1).unwrap();
                s.get(t, "k").unwrap();
                s.commit(t).unwrap();
            }
            s
        })
    });
}

fn bench_adya(c: &mut Criterion) {
    // A chain of 200 transactions each reading the previous write.
    let mut b = adya::HistoryBuilder::new();
    b.put(adya::TxnId(0), "x");
    b.commit(adya::TxnId(0));
    for i in 1..200u64 {
        // The previous transaction's PUT is its op 0 (for the first
        // transaction) or op 1 (GET then PUT).
        let prev_put = if i == 1 { 0 } else { 1 };
        b.get(adya::TxnId(i), "x", Some((adya::TxnId(i - 1), prev_put)));
        b.put(adya::TxnId(i), "x");
        b.commit(adya::TxnId(i));
    }
    let history = b.finish();
    c.bench_function("adya/serializability-200txn", |bch| {
        bch.iter(|| adya::check_isolation(&history, adya::IsolationLevel::Serializable).unwrap())
    });
}

fn bench_rorder(c: &mut Criterion) {
    // A deep handler chain: ancestor tests walk parent pointers.
    let mut hid = HandlerId::root(FunctionId(0));
    for i in 1..40 {
        hid = HandlerId::child(&hid, FunctionId(i), 1);
    }
    let root_op = OpRef::new(RequestId(0), HandlerId::root(FunctionId(0)), 1);
    let leaf_op = OpRef::new(RequestId(0), hid, 1);
    c.bench_function("rorder/ancestor-depth-40", |b| {
        b.iter(|| r_precedes(&root_op, &leaf_op))
    });
}

fn bench_graph(c: &mut Criterion) {
    use karousos::verifier::{GNode, Graph};
    c.bench_function("graph/cycle-detect-50k", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let hid = HandlerId::root(FunctionId(0));
            for i in 0..50_000u32 {
                g.add_edge(
                    GNode::op(RequestId(0), hid.clone(), i),
                    GNode::op(RequestId(0), hid.clone(), i + 1),
                    karousos::EdgeKind::Program,
                );
            }
            assert!(!g.has_cycle());
            g
        })
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(10);
    targets = bench_store, bench_adya, bench_rorder, bench_graph
}
criterion_main!(substrates);
