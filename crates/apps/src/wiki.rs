//! A Wiki.js-like application (paper §6, *Wiki.js*).
//!
//! Three request types, with ratios from the paper's workload: page
//! creation, comment creation, and renders. Pages and comment lists
//! live in the transactional store; a loggable `page_index` map and a
//! loggable connection-`pool` object are shared program state. The pool
//! object is written at request entry and release, so its logged
//! values grow with the number of concurrent requests — reproducing
//! the paper's observation that wiki advice grows with concurrency
//! because "some of the logged objects (for example, an object that
//! pools connections to the transactional store) increase in size with
//! the degree of concurrency" (§6.3).

use kem::dsl::*;
use kem::{Expr, Program, ProgramBuilder, Stmt, Value};

use crate::middleware::with_middleware;

/// First phase of pool release: mark the slot draining.
///
/// Release is two-phase (mark draining, then remove), like a real pool
/// returning a connection: the second write immediately overwrites the
/// first *within one handler*, so it is always R-ordered — Karousos
/// never logs it, Orochi-JS always does (§4.2).
fn pool_mark_draining(ctx: Expr) -> Stmt {
    swrite(
        "pool",
        map_insert(sread("pool"), field(ctx, "slot"), lit("draining")),
    )
}

/// Second phase of release: remove the slot.
fn pool_remove(ctx: Expr) -> Stmt {
    swrite("pool", map_remove(sread("pool"), field(ctx, "slot")))
}

/// First phase of context-registry release: record completion.
///
/// Like the pool, the registry is updated two-phase in one handler, so
/// the second write is always R-ordered (never logged by Karousos).
fn ctx_mark_done(ctx: Expr) -> Stmt {
    swrite(
        "req_ctx",
        map_insert(sread("req_ctx"), field(ctx, "slot"), lit("done")),
    )
}

/// Second phase of context-registry release: clear the entry.
fn ctx_remove(ctx: Expr) -> Stmt {
    swrite("req_ctx", map_remove(sread("req_ctx"), field(ctx, "slot")))
}

/// Retry response after releasing the pool.
fn retry_respond(ctx: Expr) -> Vec<Stmt> {
    vec![
        pool_mark_draining(ctx.clone()),
        pool_remove(ctx.clone()),
        ctx_mark_done(ctx.clone()),
        ctx_remove(ctx),
        respond(mapv(vec![("error", lit("retry"))])),
    ]
}

/// Builds the wiki program.
pub fn program() -> Program {
    let mut b = ProgramBuilder::new();
    b.shared_var("page_index", Value::empty_map(), true);
    b.shared_var("pool", Value::empty_map(), true);
    b.shared_var("render_count", Value::Int(0), true);
    // The per-request context registry: each request writes its own
    // context at entry and its continuation handlers read it back.
    // Those reads are usually dictated by the request's *own* write
    // (R-ordered), so Karousos skips them while Orochi-JS logs them —
    // the source of Karousos's ~50% advice saving on the wiki (§6.3).
    b.shared_var("req_ctx", Value::empty_map(), true);

    b.function(
        "handle",
        with_middleware(
            600,
            vec![
                // Acquire a pool slot; the slot name is recorded
                // nondeterminism (a fresh ticket per request).
                nondet_counter("ticket"),
                let_("slot", to_str(local("ticket"))),
                swrite(
                    "pool",
                    map_insert(sread("pool"), local("slot"), lit("pending")),
                ),
                swrite(
                    "pool",
                    map_insert(sread("pool"), local("slot"), lit("active")),
                ),
                swrite(
                    "req_ctx",
                    map_insert(
                        sread("req_ctx"),
                        local("slot"),
                        mapv(vec![("op", field(payload(), "op"))]),
                    ),
                ),
                swrite(
                    "req_ctx",
                    map_insert(
                        sread("req_ctx"),
                        local("slot"),
                        mapv(vec![("op", field(payload(), "op")), ("started", lit(true))]),
                    ),
                ),
                // Audit trail sibling: dispatched independently of the
                // transactional chain, so its completion order within the
                // request varies across schedules.
                emit("audit", local("slot")),
                iff(
                    eq(field(payload(), "op"), lit("create_page")),
                    vec![tx_start(
                        mapv(vec![
                            ("op", lit("create_page")),
                            ("id", field(payload(), "id")),
                            ("title", field(payload(), "title")),
                            ("content", field(payload(), "content")),
                            ("slot", local("slot")),
                        ]),
                        "w_started",
                    )],
                    vec![iff(
                        eq(field(payload(), "op"), lit("comment")),
                        vec![tx_start(
                            mapv(vec![
                                ("op", lit("comment")),
                                ("page", field(payload(), "page")),
                                ("text", field(payload(), "text")),
                                ("slot", local("slot")),
                            ]),
                            "w_started",
                        )],
                        vec![iff(
                            eq(field(payload(), "op"), lit("edit_page")),
                            vec![tx_start(
                                mapv(vec![
                                    ("op", lit("edit_page")),
                                    ("page", field(payload(), "page")),
                                    ("content", field(payload(), "content")),
                                    ("slot", local("slot")),
                                ]),
                                "w_started",
                            )],
                            vec![tx_start(
                                mapv(vec![
                                    ("op", lit("render")),
                                    ("page", field(payload(), "page")),
                                    ("slot", local("slot")),
                                ]),
                                "w_started",
                            )],
                        )],
                    )],
                ),
            ],
        ),
    );

    // The audit hook: reads the request's own context back (an
    // R-ordered read in most schedules).
    b.function(
        "audit_note",
        vec![let_("my_ctx", index(sread("req_ctx"), payload()))],
    );

    b.function(
        "w_started",
        vec![
            let_("ctx", field(payload(), "ctx")),
            let_("tx", field(payload(), "tx")),
            let_("rc", index(sread("req_ctx"), field(local("ctx"), "slot"))),
            iff(
                eq(field(local("ctx"), "op"), lit("create_page")),
                vec![tx_put(
                    local("tx"),
                    add(lit("page:"), field(local("ctx"), "id")),
                    mapv(vec![
                        ("title", field(local("ctx"), "title")),
                        ("content", field(local("ctx"), "content")),
                        ("rev", lit(1i64)),
                    ]),
                    local("ctx"),
                    "create_page_put",
                )],
                vec![iff(
                    eq(field(local("ctx"), "op"), lit("comment")),
                    vec![tx_get(
                        local("tx"),
                        add(lit("comments:"), field(local("ctx"), "page")),
                        local("ctx"),
                        "comment_got",
                    )],
                    vec![iff(
                        eq(field(local("ctx"), "op"), lit("edit_page")),
                        vec![tx_get(
                            local("tx"),
                            add(lit("page:"), field(local("ctx"), "page")),
                            local("ctx"),
                            "edit_got",
                        )],
                        vec![tx_get(
                            local("tx"),
                            add(lit("page:"), field(local("ctx"), "page")),
                            local("ctx"),
                            "render_page_got",
                        )],
                    )],
                )],
            ),
        ],
    );

    // --- create_page path --------------------------------------------
    b.function(
        "create_page_put",
        vec![iff(
            field(payload(), "ok"),
            vec![tx_put(
                field(payload(), "tx"),
                add(lit("comments:"), field(field(payload(), "ctx"), "id")),
                listv(vec![]),
                field(payload(), "ctx"),
                "create_comments_put",
            )],
            retry_respond(field(payload(), "ctx")),
        )],
    );
    b.function(
        "create_comments_put",
        vec![iff(
            field(payload(), "ok"),
            vec![tx_commit(
                field(payload(), "tx"),
                field(payload(), "ctx"),
                "create_committed",
            )],
            retry_respond(field(payload(), "ctx")),
        )],
    );
    b.function(
        "create_committed",
        vec![iff(
            field(payload(), "ok"),
            vec![
                let_("ctx", field(payload(), "ctx")),
                emit(
                    "page_created",
                    mapv(vec![
                        ("id", field(local("ctx"), "id")),
                        ("title", field(local("ctx"), "title")),
                    ]),
                ),
                pool_mark_draining(local("ctx")),
                pool_remove(local("ctx")),
                ctx_mark_done(local("ctx")),
                ctx_remove(local("ctx")),
                respond(mapv(vec![
                    ("ok", lit(true)),
                    ("id", field(local("ctx"), "id")),
                ])),
            ],
            retry_respond(field(payload(), "ctx")),
        )],
    );
    // Global hook: keep the in-memory page index up to date.
    b.function(
        "index_page",
        vec![swrite(
            "page_index",
            map_insert(
                sread("page_index"),
                field(payload(), "id"),
                field(payload(), "title"),
            ),
        )],
    );

    // --- edit_page path ----------------------------------------------
    b.function(
        "edit_got",
        vec![iff(
            field(payload(), "ok"),
            vec![
                let_("ctx", field(payload(), "ctx")),
                iff(
                    field(payload(), "found"),
                    vec![
                        let_("old", field(payload(), "value")),
                        let_("rev", add(field(local("old"), "rev"), lit(1i64))),
                        tx_put(
                            field(payload(), "tx"),
                            add(lit("page:"), field(local("ctx"), "page")),
                            mapv(vec![
                                ("title", field(local("old"), "title")),
                                ("content", field(local("ctx"), "content")),
                                ("rev", local("rev")),
                            ]),
                            mapv(vec![
                                ("slot", field(local("ctx"), "slot")),
                                ("rev", local("rev")),
                            ]),
                            "edit_put",
                        ),
                    ],
                    // Editing a missing page: abort, 404.
                    vec![tx_abort(field(payload(), "tx"), local("ctx"), "render_404")],
                ),
            ],
            retry_respond(field(payload(), "ctx")),
        )],
    );
    b.function(
        "edit_put",
        vec![iff(
            field(payload(), "ok"),
            vec![tx_commit(
                field(payload(), "tx"),
                field(payload(), "ctx"),
                "edit_committed",
            )],
            retry_respond(field(payload(), "ctx")),
        )],
    );
    b.function(
        "edit_committed",
        vec![iff(
            field(payload(), "ok"),
            vec![
                let_("ctx", field(payload(), "ctx")),
                pool_mark_draining(local("ctx")),
                pool_remove(local("ctx")),
                ctx_mark_done(local("ctx")),
                ctx_remove(local("ctx")),
                respond(mapv(vec![
                    ("ok", lit(true)),
                    ("rev", field(local("ctx"), "rev")),
                ])),
            ],
            retry_respond(field(payload(), "ctx")),
        )],
    );

    // --- comment path ------------------------------------------------
    b.function(
        "comment_got",
        vec![iff(
            field(payload(), "ok"),
            vec![
                let_("ctx", field(payload(), "ctx")),
                let_("rc", index(sread("req_ctx"), field(local("ctx"), "slot"))),
                iff(
                    field(payload(), "found"),
                    vec![let_("comments", field(payload(), "value"))],
                    vec![let_("comments", listv(vec![]))],
                ),
                let_(
                    "updated",
                    list_push(
                        local("comments"),
                        mapv(vec![("text", field(local("ctx"), "text"))]),
                    ),
                ),
                tx_put(
                    field(payload(), "tx"),
                    add(lit("comments:"), field(local("ctx"), "page")),
                    local("updated"),
                    mapv(vec![
                        ("slot", field(local("ctx"), "slot")),
                        ("count", len(local("updated"))),
                    ]),
                    "comment_put",
                ),
            ],
            retry_respond(field(payload(), "ctx")),
        )],
    );
    b.function(
        "comment_put",
        vec![iff(
            field(payload(), "ok"),
            vec![tx_commit(
                field(payload(), "tx"),
                field(payload(), "ctx"),
                "comment_committed",
            )],
            retry_respond(field(payload(), "ctx")),
        )],
    );
    b.function(
        "comment_committed",
        vec![iff(
            field(payload(), "ok"),
            vec![
                let_("ctx", field(payload(), "ctx")),
                pool_mark_draining(local("ctx")),
                pool_remove(local("ctx")),
                ctx_mark_done(local("ctx")),
                ctx_remove(local("ctx")),
                respond(mapv(vec![
                    ("ok", lit(true)),
                    ("count", field(local("ctx"), "count")),
                ])),
            ],
            retry_respond(field(payload(), "ctx")),
        )],
    );

    // --- render path -------------------------------------------------
    b.function(
        "render_page_got",
        vec![iff(
            field(payload(), "ok"),
            vec![
                let_("ctx", field(payload(), "ctx")),
                iff(
                    field(payload(), "found"),
                    vec![tx_get(
                        field(payload(), "tx"),
                        add(lit("comments:"), field(local("ctx"), "page")),
                        mapv(vec![
                            ("slot", field(local("ctx"), "slot")),
                            ("page", field(local("ctx"), "page")),
                            ("title", field(field(payload(), "value"), "title")),
                            ("content", field(field(payload(), "value"), "content")),
                        ]),
                        "render_comments_got",
                    )],
                    // Missing page: abort and 404.
                    vec![tx_abort(field(payload(), "tx"), local("ctx"), "render_404")],
                ),
            ],
            retry_respond(field(payload(), "ctx")),
        )],
    );
    b.function(
        "render_404",
        vec![
            let_("ctx", field(payload(), "ctx")),
            pool_mark_draining(local("ctx")),
            pool_remove(local("ctx")),
            ctx_mark_done(local("ctx")),
            ctx_remove(local("ctx")),
            respond(mapv(vec![
                ("status", lit(404i64)),
                ("page", field(local("ctx"), "page")),
            ])),
        ],
    );
    b.function(
        "render_comments_got",
        vec![iff(
            field(payload(), "ok"),
            vec![
                let_("ctx", field(payload(), "ctx")),
                let_("rc", index(sread("req_ctx"), field(local("ctx"), "slot"))),
                iff(
                    field(payload(), "found"),
                    vec![let_("comments", field(payload(), "value"))],
                    vec![let_("comments", listv(vec![]))],
                ),
                let_(
                    "html",
                    add(
                        add(lit("<h1>"), field(local("ctx"), "title")),
                        add(
                            add(lit("</h1><p>"), field(local("ctx"), "content")),
                            lit("</p><ul>"),
                        ),
                    ),
                ),
                for_each(
                    "c",
                    local("comments"),
                    vec![let_(
                        "html",
                        add(
                            local("html"),
                            add(lit("<li>"), add(field(local("c"), "text"), lit("</li>"))),
                        ),
                    )],
                ),
                let_("html", add(local("html"), lit("</ul>"))),
                swrite("render_count", add(sread("render_count"), lit(1i64))),
                tx_commit(
                    field(payload(), "tx"),
                    mapv(vec![
                        ("slot", field(local("ctx"), "slot")),
                        ("html", local("html")),
                    ]),
                    "render_committed",
                ),
            ],
            retry_respond(field(payload(), "ctx")),
        )],
    );
    b.function(
        "render_committed",
        vec![iff(
            field(payload(), "ok"),
            vec![
                let_("ctx", field(payload(), "ctx")),
                pool_mark_draining(local("ctx")),
                pool_remove(local("ctx")),
                ctx_mark_done(local("ctx")),
                ctx_remove(local("ctx")),
                respond(mapv(vec![
                    ("html", field(local("ctx"), "html")),
                    ("renders", sread("render_count")),
                ])),
            ],
            retry_respond(field(payload(), "ctx")),
        )],
    );

    b.request_handler("handle");
    b.global_registration("page_created", "index_page");
    b.global_registration("audit", "audit_note");
    b.build().expect("wiki program is well-formed")
}

/// A page-creation request.
pub fn create_page(id: &str, title: &str, content: &str) -> Value {
    Value::map([
        ("op", Value::str("create_page")),
        ("id", Value::str(id)),
        ("title", Value::str(title)),
        ("content", Value::str(content)),
    ])
}

/// A comment-creation request.
pub fn comment(page: &str, text: &str) -> Value {
    Value::map([
        ("op", Value::str("comment")),
        ("page", Value::str(page)),
        ("text", Value::str(text)),
    ])
}

/// A page-edit request: replaces the content, bumping the revision.
pub fn edit_page(page: &str, content: &str) -> Value {
    Value::map([
        ("op", Value::str("edit_page")),
        ("page", Value::str(page)),
        ("content", Value::str(content)),
    ])
}

/// A render request.
pub fn render(page: &str) -> Value {
    Value::map([("op", Value::str("render")), ("page", Value::str(page))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kem::{NoopHooks, RequestId, ServerConfig};

    fn run(inputs: &[Value]) -> kem::RunOutput {
        kem::run_server(&program(), inputs, &ServerConfig::default(), &mut NoopHooks).unwrap()
    }

    #[test]
    fn create_then_render() {
        let out = run(&[create_page("home", "Home", "hello world"), render("home")]);
        let created = out.trace.output_of(RequestId(0)).unwrap();
        assert_eq!(created.field("ok").unwrap(), &Value::Bool(true));
        let rendered = out.trace.output_of(RequestId(1)).unwrap();
        let html = rendered.field("html").unwrap().as_str().unwrap();
        assert!(html.contains("<h1>Home</h1>"));
        assert!(html.contains("hello world"));
        assert_eq!(rendered.field("renders").unwrap(), &Value::int(1));
    }

    #[test]
    fn comments_appear_in_render() {
        let out = run(&[
            create_page("p", "P", "body"),
            comment("p", "first!"),
            comment("p", "second"),
            render("p"),
        ]);
        let c2 = out.trace.output_of(RequestId(2)).unwrap();
        assert_eq!(c2.field("count").unwrap(), &Value::int(2));
        let html = out
            .trace
            .output_of(RequestId(3))
            .unwrap()
            .field("html")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(html.contains("<li>first!</li>"));
        assert!(html.contains("<li>second</li>"));
    }

    #[test]
    fn render_missing_page_is_404() {
        let out = run(&[render("ghost")]);
        let resp = out.trace.output_of(RequestId(0)).unwrap();
        assert_eq!(resp.field("status").unwrap(), &Value::int(404));
    }

    #[test]
    fn edit_bumps_revision_and_changes_render() {
        let out = run(&[
            create_page("p", "P", "v1 content"),
            edit_page("p", "v2 content"),
            edit_page("p", "v3 content"),
            render("p"),
        ]);
        let e1 = out.trace.output_of(RequestId(1)).unwrap();
        assert_eq!(e1.field("rev").unwrap(), &Value::int(2));
        let e2 = out.trace.output_of(RequestId(2)).unwrap();
        assert_eq!(e2.field("rev").unwrap(), &Value::int(3));
        let html = out
            .trace
            .output_of(RequestId(3))
            .unwrap()
            .field("html")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(html.contains("v3 content"));
        assert!(!html.contains("v1 content"));
    }

    #[test]
    fn edit_missing_page_is_404() {
        let out = run(&[edit_page("ghost", "content")]);
        let resp = out.trace.output_of(RequestId(0)).unwrap();
        assert_eq!(resp.field("status").unwrap(), &Value::int(404));
    }

    #[test]
    fn comment_on_missing_page_starts_fresh_list() {
        // Comments can exist without a page (as in the real app, where
        // the row is created lazily).
        let out = run(&[comment("lazy", "hi")]);
        let resp = out.trace.output_of(RequestId(0)).unwrap();
        assert_eq!(resp.field("count").unwrap(), &Value::int(1));
    }
}
