//! The evaluation applications of the Karousos paper (§6), written in
//! KJS against the `kem` runtime:
//!
//! * [`motd`] — *Message of the day*: get/set a message, per-day or
//!   global, stored in a shared hashmap (no transactional store). A
//!   single request handler — the paper's pathological case where every
//!   access is cross-request and hence logged.
//! * [`stacks`] — *Stack dump logging*: report/count/list stack dumps
//!   in the transactional store, with conflict-retry errors and a
//!   shared digest index; exercises the PUT/GET interface and deep
//!   continuation trees.
//! * [`wiki`] — a Wiki.js-like application: page creation, comments,
//!   renders; mixes transactional state, shared variables, and event
//!   hooks.
//!
//! Each module exposes `program()` (the KJS program) plus request
//! constructors used by the `workload` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod middleware;
pub mod motd;
pub mod stacks;
pub mod wiki;

/// The three applications, for harness iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Message of the day.
    Motd,
    /// Stack dump logging.
    Stacks,
    /// The wiki.
    Wiki,
}

impl App {
    /// All applications.
    pub const ALL: [App; 3] = [App::Motd, App::Stacks, App::Wiki];

    /// Display name used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            App::Motd => "motd",
            App::Stacks => "stacks",
            App::Wiki => "wiki",
        }
    }

    /// Builds the application's program.
    pub fn program(self) -> kem::Program {
        match self {
            App::Motd => motd::program(),
            App::Stacks => stacks::program(),
            App::Wiki => wiki::program(),
        }
    }
}
