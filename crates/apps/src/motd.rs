//! Message of the day (paper §6, *Message of the day*).
//!
//! Users get or set a "message of the day". Setting specifies whether
//! the message is for every day (`day = "all"`) or one particular day.
//! "Messages and metadata are stored in a local hashmap rather than in
//! a transactional store" — here the loggable shared variables `motd`
//! (per-day map) and `motd_default`.
//!
//! The application has a single request handler, so every handler
//! activation is a child of the initialization activation `I`: all
//! cross-request accesses are R-concurrent and get logged, and
//! Karousos's grouping degenerates to Orochi's — exactly the
//! pathological behaviour §6.2 dissects.

use kem::dsl::*;
use kem::{Program, ProgramBuilder, Value};

use crate::middleware::with_middleware;

/// Builds the MOTD program.
pub fn program() -> Program {
    let mut b = ProgramBuilder::new();
    // day → {msg, ts, author}.
    b.shared_var("motd", Value::empty_map(), true);
    // The every-day message.
    b.shared_var(
        "motd_default",
        Value::map([
            ("msg", Value::str("welcome")),
            ("ts", Value::int(0)),
            ("author", Value::str("system")),
        ]),
        true,
    );
    // Set counter, kept as metadata (also loggable shared state).
    b.shared_var("set_count", Value::Int(0), true);
    // Full message history: every set appends here, so the value grows
    // with the write count — the pathological hashmap of §6.2 whose
    // accesses dominate both the server's logging and the verifier's
    // value dictionary.
    b.shared_var("motd_history", Value::empty_map(), true);

    b.function(
        "handle",
        with_middleware(
            60,
            vec![iff(
                eq(field(payload(), "op"), lit("get")),
                // GET: day-specific message if present, else the default.
                vec![
                    let_("day", field(payload(), "day")),
                    let_("m", sread("motd")),
                    iff(
                        contains(local("m"), local("day")),
                        vec![respond(mapv(vec![
                            ("msg", field(index(local("m"), local("day")), "msg")),
                            ("ts", field(index(local("m"), local("day")), "ts")),
                            ("scope", lit("day")),
                        ]))],
                        vec![respond(mapv(vec![
                            ("msg", field(sread("motd_default"), "msg")),
                            ("ts", field(sread("motd_default"), "ts")),
                            ("scope", lit("default")),
                        ]))],
                    ),
                ],
                // SET: per-day or every-day, with a recorded timestamp.
                vec![
                    nondet_counter("ts"),
                    let_(
                        "entry",
                        mapv(vec![
                            ("msg", field(payload(), "msg")),
                            ("ts", local("ts")),
                            ("author", field(payload(), "author")),
                        ]),
                    ),
                    swrite("set_count", add(sread("set_count"), lit(1i64))),
                    swrite(
                        "motd_history",
                        map_insert(
                            sread("motd_history"),
                            add(add(field(payload(), "day"), lit(":")), to_str(local("ts"))),
                            local("entry"),
                        ),
                    ),
                    iff(
                        eq(field(payload(), "day"), lit("all")),
                        vec![swrite("motd_default", local("entry"))],
                        vec![swrite(
                            "motd",
                            map_insert(sread("motd"), field(payload(), "day"), local("entry")),
                        )],
                    ),
                    respond(mapv(vec![("ok", lit(true)), ("sets", sread("set_count"))])),
                ],
            )],
        ),
    );
    b.request_handler("handle");
    b.build().expect("motd program is well-formed")
}

/// A `get` request for `day`.
pub fn get(day: &str) -> Value {
    Value::map([("op", Value::str("get")), ("day", Value::str(day))])
}

/// A `set` request: `day` may be `"all"` for the every-day message.
pub fn set(day: &str, msg: &str, author: &str) -> Value {
    Value::map([
        ("op", Value::str("set")),
        ("day", Value::str(day)),
        ("msg", Value::str(msg)),
        ("author", Value::str(author)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kem::{NoopHooks, RequestId, ServerConfig};

    fn run(inputs: &[Value]) -> kem::RunOutput {
        kem::run_server(&program(), inputs, &ServerConfig::default(), &mut NoopHooks).unwrap()
    }

    #[test]
    fn get_before_set_returns_default() {
        let out = run(&[get("mon")]);
        let resp = out.trace.output_of(RequestId(0)).unwrap();
        assert_eq!(resp.field("scope").unwrap(), &Value::str("default"));
        assert_eq!(resp.field("msg").unwrap(), &Value::str("welcome"));
    }

    #[test]
    fn set_then_get_day_specific() {
        let out = run(&[set("mon", "hello monday", "cam"), get("mon"), get("tue")]);
        let mon = out.trace.output_of(RequestId(1)).unwrap();
        assert_eq!(mon.field("msg").unwrap(), &Value::str("hello monday"));
        assert_eq!(mon.field("scope").unwrap(), &Value::str("day"));
        let tue = out.trace.output_of(RequestId(2)).unwrap();
        assert_eq!(tue.field("scope").unwrap(), &Value::str("default"));
    }

    #[test]
    fn set_all_changes_default() {
        let out = run(&[set("all", "global msg", "cam"), get("fri")]);
        let fri = out.trace.output_of(RequestId(1)).unwrap();
        assert_eq!(fri.field("msg").unwrap(), &Value::str("global msg"));
    }

    #[test]
    fn set_count_increments() {
        let out = run(&[set("a", "1", "x"), set("b", "2", "x")]);
        let second = out.trace.output_of(RequestId(1)).unwrap();
        assert_eq!(second.field("sets").unwrap(), &Value::int(2));
    }
}
