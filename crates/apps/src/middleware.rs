//! Framework-code stand-in: the uniform per-request work every web
//! application performs before its own logic runs.
//!
//! The paper's applications "execute ~1.6k LOC (including libraries)"
//! (MOTD) and "~9k LOC (including libraries)" (stacks): most of what a
//! Node.js server executes per request is framework code — routing,
//! parsing, validation, serialization — identical across requests.
//! That uniformity is precisely what SIMD-on-demand re-execution
//! deduplicates (§2.3): the verifier runs it once per *group* while the
//! server and the sequential baseline run it once per *request*.
//!
//! [`middleware`] produces a deterministic compute loop over
//! uniform values (plus a digest of the request's operation name, which
//! is uniform within a control-flow group). It touches no shared state,
//! so it adds no advice — only honest re-executable work.

use kem::dsl::*;
use kem::Stmt;

/// Returns statements performing `iters` iterations of framework-like
/// work. Binds (and leaves behind) the locals `mw_acc` and `mw_i`.
pub fn middleware(iters: i64) -> Vec<Stmt> {
    vec![
        // "Routing": digest the operation name (uniform per group).
        let_("mw_route", digest(field(payload(), "op"))),
        let_("mw_acc", len(local("mw_route"))),
        let_("mw_i", lit(0i64)),
        // "Validation / serialization": a deterministic arithmetic loop.
        while_(
            lt(local("mw_i"), lit(iters)),
            vec![
                let_(
                    "mw_acc",
                    modulo(
                        add(mul(local("mw_acc"), lit(1_103_515_245i64)), lit(12_345i64)),
                        lit(1_000_003i64),
                    ),
                ),
                let_("mw_i", add(local("mw_i"), lit(1i64))),
            ],
        ),
        // "Response envelope": fold the route into the final token.
        let_("mw_acc", add(to_str(local("mw_acc")), local("mw_route"))),
    ]
}

/// Prepends [`middleware`] to an existing body.
pub fn with_middleware(iters: i64, mut body: Vec<Stmt>) -> Vec<Stmt> {
    let mut stmts = middleware(iters);
    stmts.append(&mut body);
    stmts
}

#[cfg(test)]
mod tests {
    use super::*;
    use kem::{NoopHooks, ProgramBuilder, RequestId, ServerConfig, Value};

    #[test]
    fn middleware_is_deterministic_and_uniform() {
        let mut b = ProgramBuilder::new();
        b.function(
            "handle",
            with_middleware(50, vec![respond(local("mw_acc"))]),
        );
        b.request_handler("handle");
        let p = b.build().unwrap();
        let inputs = vec![
            Value::map([("op", Value::str("get"))]),
            Value::map([("op", Value::str("get"))]),
        ];
        let out = kem::run_server(&p, &inputs, &ServerConfig::default(), &mut NoopHooks).unwrap();
        // Same op ⇒ same middleware result: uniform across the group.
        assert_eq!(
            out.trace.output_of(RequestId(0)),
            out.trace.output_of(RequestId(1))
        );
    }

    #[test]
    fn middleware_varies_by_route() {
        let mut b = ProgramBuilder::new();
        b.function(
            "handle",
            with_middleware(50, vec![respond(local("mw_acc"))]),
        );
        b.request_handler("handle");
        let p = b.build().unwrap();
        let inputs = vec![
            Value::map([("op", Value::str("get"))]),
            Value::map([("op", Value::str("set"))]),
        ];
        let out = kem::run_server(&p, &inputs, &ServerConfig::default(), &mut NoopHooks).unwrap();
        assert_ne!(
            out.trace.output_of(RequestId(0)),
            out.trace.output_of(RequestId(1))
        );
    }
}
