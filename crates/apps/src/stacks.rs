//! Stack dump logging (paper §6, *Stack dump logging*).
//!
//! Users submit stack dumps, count how many times a dump has been
//! reported, and list unique dumps. Dumps and their report counts live
//! in the transactional store, keyed by the dump's digest. When a
//! report conflicts with a concurrent report of the same dump, the
//! store's lock-conflict abort surfaces as a *retry* error — the
//! behaviour the paper uses to avoid deadlocks. `list` issues one query
//! per digest recorded in the shared `digests` variable, so it builds a
//! continuation chain whose depth equals the number of unique dumps —
//! plenty of concurrently-activated handlers, the workload where
//! Karousos's tree-shaped grouping beats Orochi-JS (§6.2).

use kem::dsl::*;
use kem::{Program, ProgramBuilder, Value};

use crate::middleware::with_middleware;

/// Builds the stack-dump program.
pub fn program() -> Program {
    let mut b = ProgramBuilder::new();
    // All digests stored in the table, in insertion order.
    b.shared_var("digests", Value::list([]), true);
    // Request statistics, updated by a sibling handler that runs
    // concurrently with the transactional continuation chain — the
    // source of per-request handler reordering that defeats Orochi-JS's
    // sequence-based grouping (§6.2).
    b.shared_var("stats_total", Value::Int(0), true);

    b.function(
        "handle",
        with_middleware(
            900,
            vec![
                emit("req_note", field(payload(), "op")),
                iff(
                    eq(field(payload(), "op"), lit("report")),
                    vec![
                        let_("dg", digest(field(payload(), "dump"))),
                        tx_start(
                            mapv(vec![
                                ("op", lit("report")),
                                ("dg", local("dg")),
                                ("dump", field(payload(), "dump")),
                            ]),
                            "started",
                        ),
                    ],
                    vec![iff(
                        eq(field(payload(), "op"), lit("count")),
                        vec![
                            let_("dg", digest(field(payload(), "dump"))),
                            tx_start(
                                mapv(vec![("op", lit("count")), ("dg", local("dg"))]),
                                "started",
                            ),
                        ],
                        // list
                        vec![tx_start(
                            mapv(vec![("op", lit("list")), ("digests", sread("digests"))]),
                            "started",
                        )],
                    )],
                ),
            ],
        ),
    );

    b.function(
        "started",
        vec![
            let_("ctx", field(payload(), "ctx")),
            let_("tx", field(payload(), "tx")),
            iff(
                eq(field(local("ctx"), "op"), lit("report")),
                vec![tx_get(
                    local("tx"),
                    field(local("ctx"), "dg"),
                    local("ctx"),
                    "rep_got",
                )],
                vec![iff(
                    eq(field(local("ctx"), "op"), lit("count")),
                    vec![tx_get(
                        local("tx"),
                        field(local("ctx"), "dg"),
                        local("ctx"),
                        "cnt_got",
                    )],
                    vec![iff(
                        eq(len(field(local("ctx"), "digests")), lit(0i64)),
                        vec![tx_commit(local("tx"), listv(vec![]), "list_done")],
                        vec![tx_get(
                            local("tx"),
                            index(field(local("ctx"), "digests"), lit(0i64)),
                            mapv(vec![
                                ("digests", field(local("ctx"), "digests")),
                                ("i", lit(0i64)),
                                ("acc", listv(vec![])),
                            ]),
                            "list_got",
                        )],
                    )],
                )],
            ),
        ],
    );

    // --- report path -------------------------------------------------
    b.function(
        "rep_got",
        vec![iff(
            field(payload(), "ok"),
            vec![
                let_("ctx", field(payload(), "ctx")),
                iff(
                    field(payload(), "found"),
                    vec![tx_put(
                        field(payload(), "tx"),
                        field(local("ctx"), "dg"),
                        mapv(vec![
                            ("dump", field(field(payload(), "value"), "dump")),
                            (
                                "count",
                                add(field(field(payload(), "value"), "count"), lit(1i64)),
                            ),
                        ]),
                        mapv(vec![
                            ("is_new", lit(false)),
                            ("dg", field(local("ctx"), "dg")),
                        ]),
                        "rep_put_done",
                    )],
                    vec![tx_put(
                        field(payload(), "tx"),
                        field(local("ctx"), "dg"),
                        mapv(vec![
                            ("dump", field(local("ctx"), "dump")),
                            ("count", lit(1i64)),
                        ]),
                        mapv(vec![
                            ("is_new", lit(true)),
                            ("dg", field(local("ctx"), "dg")),
                        ]),
                        "rep_put_done",
                    )],
                ),
            ],
            // A concurrent request reported the same dump: retry.
            vec![respond(mapv(vec![("error", lit("retry"))]))],
        )],
    );
    b.function(
        "rep_put_done",
        vec![iff(
            field(payload(), "ok"),
            vec![tx_commit(
                field(payload(), "tx"),
                field(payload(), "ctx"),
                "rep_committed",
            )],
            vec![respond(mapv(vec![("error", lit("retry"))]))],
        )],
    );
    b.function(
        "rep_committed",
        vec![iff(
            field(payload(), "ok"),
            vec![
                let_("ctx", field(payload(), "ctx")),
                iff(
                    field(local("ctx"), "is_new"),
                    vec![swrite(
                        "digests",
                        list_push(sread("digests"), field(local("ctx"), "dg")),
                    )],
                    vec![],
                ),
                respond(mapv(vec![
                    ("ok", lit(true)),
                    ("new", field(local("ctx"), "is_new")),
                ])),
            ],
            vec![respond(mapv(vec![("error", lit("retry"))]))],
        )],
    );

    // --- count path --------------------------------------------------
    b.function(
        "cnt_got",
        vec![iff(
            field(payload(), "ok"),
            vec![iff(
                field(payload(), "found"),
                vec![tx_commit(
                    field(payload(), "tx"),
                    mapv(vec![
                        ("found", lit(true)),
                        ("count", field(field(payload(), "value"), "count")),
                    ]),
                    "cnt_done",
                )],
                vec![tx_commit(
                    field(payload(), "tx"),
                    mapv(vec![("found", lit(false)), ("count", lit(0i64))]),
                    "cnt_done",
                )],
            )],
            vec![respond(mapv(vec![("error", lit("retry"))]))],
        )],
    );
    b.function(
        "cnt_done",
        vec![iff(
            field(payload(), "ok"),
            vec![respond(field(payload(), "ctx"))],
            vec![respond(mapv(vec![("error", lit("retry"))]))],
        )],
    );

    // --- list path ---------------------------------------------------
    b.function(
        "list_got",
        vec![iff(
            field(payload(), "ok"),
            vec![
                let_("ctx", field(payload(), "ctx")),
                let_("i", field(local("ctx"), "i")),
                let_("digests", field(local("ctx"), "digests")),
                let_(
                    "acc",
                    list_push(
                        field(local("ctx"), "acc"),
                        mapv(vec![
                            ("dg", index(local("digests"), local("i"))),
                            ("count", field(field(payload(), "value"), "count")),
                        ]),
                    ),
                ),
                let_("next", add(local("i"), lit(1i64))),
                iff(
                    lt(local("next"), len(local("digests"))),
                    vec![tx_get(
                        field(payload(), "tx"),
                        index(local("digests"), local("next")),
                        mapv(vec![
                            ("digests", local("digests")),
                            ("i", local("next")),
                            ("acc", local("acc")),
                        ]),
                        "list_got",
                    )],
                    vec![tx_commit(field(payload(), "tx"), local("acc"), "list_done")],
                ),
            ],
            vec![respond(mapv(vec![("error", lit("retry"))]))],
        )],
    );
    b.function(
        "list_done",
        vec![iff(
            field(payload(), "ok"),
            vec![respond(mapv(vec![("dumps", field(payload(), "ctx"))]))],
            vec![respond(mapv(vec![("error", lit("retry"))]))],
        )],
    );

    // Bookkeeping sibling: activated by `handle` and scheduled
    // independently of the transactional continuations.
    b.function(
        "note_req",
        vec![swrite("stats_total", add(sread("stats_total"), lit(1i64)))],
    );

    b.request_handler("handle");
    b.global_registration("req_note", "note_req");
    b.build().expect("stacks program is well-formed")
}

/// A `report` request submitting `dump`.
pub fn report(dump: &str) -> Value {
    Value::map([("op", Value::str("report")), ("dump", Value::str(dump))])
}

/// A `count` request for `dump`.
pub fn count(dump: &str) -> Value {
    Value::map([("op", Value::str("count")), ("dump", Value::str(dump))])
}

/// A `list` request.
pub fn list() -> Value {
    Value::map([("op", Value::str("list"))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kem::{NoopHooks, RequestId, ServerConfig};

    fn run(inputs: &[Value]) -> kem::RunOutput {
        kem::run_server(&program(), inputs, &ServerConfig::default(), &mut NoopHooks).unwrap()
    }

    #[test]
    fn report_new_then_existing() {
        let out = run(&[report("stack A"), report("stack A"), report("stack B")]);
        let first = out.trace.output_of(RequestId(0)).unwrap();
        assert_eq!(first.field("new").unwrap(), &Value::Bool(true));
        let second = out.trace.output_of(RequestId(1)).unwrap();
        assert_eq!(second.field("new").unwrap(), &Value::Bool(false));
        let third = out.trace.output_of(RequestId(2)).unwrap();
        assert_eq!(third.field("new").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn count_reflects_reports() {
        let out = run(&[report("s"), report("s"), count("s"), count("unknown")]);
        let c = out.trace.output_of(RequestId(2)).unwrap();
        assert_eq!(c.field("count").unwrap(), &Value::int(2));
        assert_eq!(c.field("found").unwrap(), &Value::Bool(true));
        let u = out.trace.output_of(RequestId(3)).unwrap();
        assert_eq!(u.field("found").unwrap(), &Value::Bool(false));
    }

    #[test]
    fn list_enumerates_unique_dumps() {
        let out = run(&[report("a"), report("b"), report("a"), list()]);
        let l = out.trace.output_of(RequestId(3)).unwrap();
        let dumps = l.field("dumps").unwrap().as_list().unwrap();
        assert_eq!(dumps.len(), 2);
        let counts: Vec<i64> = dumps
            .iter()
            .map(|d| d.field("count").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(counts.iter().sum::<i64>(), 3);
    }

    #[test]
    fn empty_list() {
        let out = run(&[list()]);
        let l = out.trace.output_of(RequestId(0)).unwrap();
        assert_eq!(l.field("dumps").unwrap().as_list().unwrap().len(), 0);
    }

    #[test]
    fn concurrent_same_dump_reports_can_retry() {
        // With concurrency, two reports of the same dump can conflict;
        // at least one schedule in the seed range must produce a retry.
        let inputs = vec![report("same"), report("same"), report("same")];
        let mut saw_retry = false;
        for seed in 0..60u64 {
            let cfg = ServerConfig {
                concurrency: 3,
                policy: kem::SchedPolicy::Random { seed },
                ..Default::default()
            };
            let out = kem::run_server(&program(), &inputs, &cfg, &mut NoopHooks).unwrap();
            for i in 0..3 {
                let resp = out.trace.output_of(RequestId(i)).unwrap();
                if resp.field("error").is_some() {
                    saw_retry = true;
                }
            }
            if saw_retry {
                break;
            }
        }
        assert!(
            saw_retry,
            "expected a conflicting schedule to produce a retry"
        );
    }
}
