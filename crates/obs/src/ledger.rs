//! Cost-attribution ledger: per-group and per-request audit spend.
//!
//! Every replay worker fills one [`GroupCost`] row into its private
//! `ObsShard`; the coordinator absorbs shards in ascending group order
//! (the same merge discipline as the metrics and the per-variable edge
//! fragments), so the assembled [`CostLedger`] is bit-identical at any
//! threads × pipeline × bytecode configuration — for its
//! *deterministic* columns. Two columns are machine-dependent by
//! nature and excluded from that contract: `wall_us` (wall clock) and
//! `alloc_events` (depends on which worker's scratch pools a group
//! happened to reuse). [`GroupCost::deterministic_key`] names the
//! pinned columns; `tests/ledger_determinism.rs` enforces the matrix.

use crate::allocprobe;

/// What one replay group cost the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupCost {
    /// Group index in replay order.
    pub group: u64,
    /// Requests in the group.
    pub requests: u64,
    /// First request id of the group (groups batch same-tag requests,
    /// so this names a representative request).
    pub first_rid: u64,
    /// The group's handler-tree digest (its control-flow tag; equal
    /// across members by construction). Groups sharing a digest ran
    /// the same handler tree — the "handler" axis of attribution.
    pub digest: u64,
    /// Fuel the group's replay spent.
    pub fuel: u64,
    /// Operations replayed once for the whole group.
    pub uniform_ops: u64,
    /// Operations expanded per member.
    pub expanded_ops: u64,
    /// Bytecode instructions dispatched (0 under the tree-walk).
    pub bytecode_ops: u64,
    /// Reads satisfied from the advice dictionary.
    pub dict_feeds: u64,
    /// Reads satisfied by a logged var-log entry.
    pub logged_reads: u64,
    /// Shared-variable reads the group recorded (each becomes a
    /// potential WR/RW edge source during the graph merge).
    pub var_reads: u64,
    /// Shared-variable writes the group recorded (each becomes a
    /// potential WR/WW edge source during the graph merge).
    pub var_writes: u64,
    /// Wall-clock microseconds the replay took (advisory: machine- and
    /// schedule-dependent).
    pub wall_us: u64,
    /// Allocations observed by the thread-local [`allocprobe`] during
    /// the replay (advisory: 0 unless a counting allocator feeds the
    /// probe; depends on scratch-pool reuse across groups).
    pub alloc_events: u64,
}

impl GroupCost {
    /// The columns pinned bit-identical across the threads × pipeline
    /// × bytecode matrix. `bytecode_ops` is pinned only across cells
    /// with the same interpreter (the tree-walk dispatches none), so
    /// it is excluded here and compared per-interpreter by the tests.
    pub fn deterministic_key(&self) -> [u64; 10] {
        [
            self.group,
            self.requests,
            self.first_rid,
            self.digest,
            self.fuel,
            self.uniform_ops,
            self.expanded_ops,
            self.dict_feeds,
            self.logged_reads,
            self.var_reads + self.var_writes,
        ]
    }

    /// One ledger row as a JSON object (single line).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"group\": {}, \"requests\": {}, \"first_rid\": {}, \"digest\": {}, \"fuel\": {}, \
             \"uniform_ops\": {}, \"expanded_ops\": {}, \"bytecode_ops\": {}, \"dict_feeds\": {}, \
             \"logged_reads\": {}, \"var_reads\": {}, \"var_writes\": {}, \"wall_us\": {}, \
             \"alloc_events\": {}}}",
            self.group,
            self.requests,
            self.first_rid,
            self.digest,
            self.fuel,
            self.uniform_ops,
            self.expanded_ops,
            self.bytecode_ops,
            self.dict_feeds,
            self.logged_reads,
            self.var_reads,
            self.var_writes,
            self.wall_us,
            self.alloc_events
        )
    }
}

/// What serving one request cost the runtime (recorded by the
/// collector behind the same obs gate; advisory — server-side costs
/// depend on the live schedule, unlike the replay ledger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestCost {
    /// The request id.
    pub rid: u64,
    /// Handler activations the request triggered.
    pub activations: u64,
    /// Operations those activations logged.
    pub ops: u64,
    /// Fuel those activations burned.
    pub fuel: u64,
}

impl RequestCost {
    /// One ledger row as a JSON object (single line).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rid\": {}, \"activations\": {}, \"ops\": {}, \"fuel\": {}}}",
            self.rid, self.activations, self.ops, self.fuel
        )
    }
}

/// Column sums over a [`CostLedger`]'s group rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerTotals {
    /// Group rows summed.
    pub groups: u64,
    /// Requests covered by those groups.
    pub requests: u64,
    /// Total replay fuel.
    pub fuel: u64,
    /// Total uniform + expanded operations.
    pub ops: u64,
    /// Total bytecode instructions.
    pub bytecode_ops: u64,
    /// Total dictionary feeds.
    pub dict_feeds: u64,
    /// Total recorded shared-variable accesses (reads + writes).
    pub var_accesses: u64,
    /// Total advisory wall-clock microseconds.
    pub wall_us: u64,
    /// Total advisory allocation events.
    pub alloc_events: u64,
}

/// The assembled per-group / per-request cost ledger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CostLedger {
    /// One row per replayed group, in ascending group order.
    pub groups: Vec<GroupCost>,
    /// One row per served request (present only when the collector ran
    /// with costs enabled), in ascending request order.
    pub requests: Vec<RequestCost>,
}

impl CostLedger {
    /// Column sums over the group rows.
    pub fn totals(&self) -> LedgerTotals {
        let mut t = LedgerTotals::default();
        for g in &self.groups {
            t.groups += 1;
            t.requests += g.requests;
            t.fuel += g.fuel;
            t.ops += g.uniform_ops + g.expanded_ops;
            t.bytecode_ops += g.bytecode_ops;
            t.dict_feeds += g.dict_feeds;
            t.var_accesses += g.var_reads + g.var_writes;
            t.wall_us += g.wall_us;
            t.alloc_events += g.alloc_events;
        }
        t
    }

    /// The `k` most expensive groups by fuel (ties broken by ascending
    /// group index, so the ranking is deterministic).
    pub fn top_groups_by_fuel(&self, k: usize) -> Vec<GroupCost> {
        let mut rows = self.groups.clone();
        rows.sort_by(|a, b| b.fuel.cmp(&a.fuel).then(a.group.cmp(&b.group)));
        rows.truncate(k);
        rows
    }

    /// Per-digest ("handler tree") aggregation: groups sharing a
    /// control-flow tag summed, descending by fuel (ties by digest).
    /// Returns `(digest, groups, requests, fuel, ops)`.
    pub fn by_digest(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        let mut agg: std::collections::BTreeMap<u64, (u64, u64, u64, u64)> =
            std::collections::BTreeMap::new();
        for g in &self.groups {
            let e = agg.entry(g.digest).or_default();
            e.0 += 1;
            e.1 += g.requests;
            e.2 += g.fuel;
            e.3 += g.uniform_ops + g.expanded_ops;
        }
        let mut rows: Vec<(u64, u64, u64, u64, u64)> = agg
            .into_iter()
            .map(|(d, (groups, requests, fuel, ops))| (d, groups, requests, fuel, ops))
            .collect();
        rows.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)));
        rows
    }

    /// The ledger as a JSON object: `{"groups": [...], "requests":
    /// [...]}` (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.groups.len() * 160);
        out.push_str("{\"groups\": [");
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&g.to_json());
        }
        if !self.groups.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("], \"requests\": [");
        for (i, r) in self.requests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&r.to_json());
        }
        if !self.requests.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]}");
        out
    }
}

/// Samples the thread-local allocation probe (a no-op reading 0 unless
/// a counting allocator is feeding [`allocprobe`]). Convenience
/// re-export so ledger call sites don't import two modules.
pub fn alloc_reading() -> u64 {
    allocprobe::reading()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(group: u64, fuel: u64, digest: u64) -> GroupCost {
        GroupCost {
            group,
            requests: 2,
            fuel,
            digest,
            uniform_ops: 3,
            expanded_ops: 1,
            ..Default::default()
        }
    }

    #[test]
    fn totals_sum_columns() {
        let l = CostLedger {
            groups: vec![row(0, 10, 7), row(1, 32, 7), row(2, 5, 9)],
            requests: Vec::new(),
        };
        let t = l.totals();
        assert_eq!(t.groups, 3);
        assert_eq!(t.requests, 6);
        assert_eq!(t.fuel, 47);
        assert_eq!(t.ops, 12);
    }

    #[test]
    fn top_groups_rank_by_fuel_then_index() {
        let l = CostLedger {
            groups: vec![row(0, 10, 7), row(1, 32, 7), row(2, 10, 9)],
            requests: Vec::new(),
        };
        let top = l.top_groups_by_fuel(2);
        assert_eq!(top[0].group, 1);
        assert_eq!(top[1].group, 0); // tie with group 2 broken by index
    }

    #[test]
    fn digest_aggregation_merges_groups() {
        let l = CostLedger {
            groups: vec![row(0, 10, 7), row(1, 32, 7), row(2, 5, 9)],
            requests: Vec::new(),
        };
        let by = l.by_digest();
        assert_eq!(by[0], (7, 2, 4, 42, 8));
        assert_eq!(by[1], (9, 1, 2, 5, 4));
    }

    #[test]
    fn json_shape() {
        let l = CostLedger {
            groups: vec![row(0, 10, 7)],
            requests: vec![RequestCost {
                rid: 4,
                activations: 1,
                ops: 6,
                fuel: 10,
            }],
        };
        let j = l.to_json();
        assert!(j.contains("\"groups\": ["));
        assert!(j.contains("\"digest\": 7"));
        assert!(j.contains("\"rid\": 4"));
    }
}
