//! Thread-local allocation probe.
//!
//! The obs crate cannot install a global allocator (binaries own that
//! decision), so attribution of allocation events works the other way
//! around: a binary that *does* count allocations (the bench harness's
//! `CountingAlloc`) calls [`note`] from its `alloc` hook, and ledger
//! call sites bracket a region with two [`reading`] calls to charge
//! the delta to that region. Everything is per-thread, so a replay
//! worker only ever observes its own allocations.
//!
//! The probe is off by default ([`set_enabled`]) and [`note`] is a
//! single relaxed load on the off path, so allocator hot paths pay
//! nothing unless a capture run opts in. Under the test allocator
//! nothing feeds the probe and every delta reads 0 — which is exactly
//! the deterministic value the ledger matrix tests pin.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Turn the probe on or off process-wide (off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether [`note`] currently records.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record one allocation event on the calling thread. Safe to call
/// from a `GlobalAlloc::alloc` implementation: it allocates nothing
/// and tolerates TLS teardown.
#[inline]
pub fn note() {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let _ = ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
}

/// The calling thread's cumulative event count (0 during TLS
/// teardown). Subtract two readings to charge a region.
pub fn reading() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test (not two) because the enable flag is process-wide and
    // parallel test threads would race on it.
    #[test]
    fn probe_counts_only_while_enabled() {
        assert!(!is_enabled());
        let before = reading();
        note();
        assert_eq!(reading(), before, "disabled probe must not record");
        set_enabled(true);
        note();
        note();
        let delta = reading() - before;
        set_enabled(false);
        note();
        assert_eq!(delta, 2);
        assert_eq!(reading(), before + 2);
    }
}
