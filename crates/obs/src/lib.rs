//! `karousos-obs`: zero-dependency observability for the Karousos
//! audit pipeline.
//!
//! Three pieces:
//!
//! 1. **Metrics registry** ([`metrics`]) — catalog-addressed
//!    counters, gauges, and fixed-bucket histograms stored in inline
//!    arrays, recorded into per-thread [`ObsShard`]s and merged
//!    deterministically (the same discipline as the verifier's
//!    per-variable edge fragments).
//! 2. **Span tracing** ([`span`]) — a heap-free [`Span`] record, a
//!    ring-buffer recorder, and a Chrome `trace_event` exporter.
//! 3. **The [`Obs`] handle** — `Obs::noop()` is the default
//!    everywhere: it holds no allocation, and every record call is an
//!    inlined early return, so the instrumented hot path costs
//!    nothing when observability is off (the PR 3 alloc-regression
//!    budget is enforced against this path). `Obs::enabled()` turns
//!    on recording behind one `Arc<Mutex<_>>`; worker threads never
//!    touch the lock — they record into private [`ObsShard`]s that
//!    the coordinator absorbs in ascending group order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocprobe;
pub mod ledger;
pub mod metrics;
pub mod progress;
pub mod prom;
pub mod span;

pub use ledger::{CostLedger, GroupCost, LedgerTotals, RequestCost};
pub use metrics::{
    bucket_bound, bucket_index, CounterId, GaugeId, HistogramId, MetricsShard, NUM_BUCKETS,
};
pub use progress::{Phase, Progress, ProgressSnapshot};
pub use prom::{check_exposition, prometheus_text, PromExporter, DEFAULT_SCRAPE_INTERVAL};
pub use span::{chrome_trace_json, Span, SpanRing, MAX_SPAN_ARGS};

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring-buffer capacity (spans retained) for
/// [`Obs::enabled`].
pub const DEFAULT_SPAN_CAPACITY: usize = 16_384;

struct Recorded {
    metrics: MetricsShard,
    spans: SpanRing,
    ledger: CostLedger,
}

struct Inner {
    epoch: Instant,
    state: Mutex<Recorded>,
    progress: Progress,
}

/// Cloneable observability handle. The noop handle is a `None` and
/// costs one branch per record call; the enabled handle records
/// through a mutex (coordinator-only — workers use [`ObsShard`]s).
#[derive(Clone)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::noop()
    }
}

impl Obs {
    /// The disabled handle: no allocation, all record calls are
    /// early-return no-ops.
    #[inline]
    pub fn noop() -> Self {
        Obs { inner: None }
    }

    /// An enabled handle with the default span-ring capacity.
    pub fn enabled() -> Self {
        Obs::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled handle retaining at most `span_capacity` spans.
    pub fn with_capacity(span_capacity: usize) -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(Recorded {
                    metrics: MetricsShard::new(true),
                    spans: SpanRing::new(span_capacity),
                    ledger: CostLedger::default(),
                }),
                progress: Progress::new(),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Mints a private shard for lane `lane` (worker index). Shard
    /// creation is allocation-free; record into it without locks and
    /// hand it back via [`Obs::absorb`].
    pub fn shard(&self, lane: u32) -> ObsShard {
        match &self.inner {
            Some(inner) => ObsShard {
                lane,
                epoch: inner.epoch,
                metrics: MetricsShard::new(true),
                spans: Vec::new(),
                group_costs: Vec::new(),
            },
            None => ObsShard::disabled(),
        }
    }

    /// Folds a shard's metrics and spans into the handle. Call in a
    /// deterministic order (the verifier absorbs group shards in
    /// ascending group order).
    pub fn absorb(&self, shard: ObsShard) {
        let Some(inner) = &self.inner else { return };
        if !shard.metrics.is_enabled() {
            return;
        }
        if let Ok(mut st) = inner.state.lock() {
            st.metrics.merge(&shard.metrics);
            for s in shard.spans {
                st.spans.push(s);
            }
            st.ledger.groups.extend(shard.group_costs);
        }
    }

    /// Add `n` to counter `c`.
    #[inline]
    pub fn count(&self, c: CounterId, n: u64) {
        let Some(inner) = &self.inner else { return };
        if let Ok(mut st) = inner.state.lock() {
            st.metrics.count(c, n);
        }
    }

    /// Set gauge `g` to `v`.
    #[inline]
    pub fn gauge(&self, g: GaugeId, v: u64) {
        let Some(inner) = &self.inner else { return };
        if let Ok(mut st) = inner.state.lock() {
            st.metrics.gauge(g, v);
        }
    }

    /// Record one observation of `v` in histogram `h`.
    #[inline]
    pub fn observe(&self, h: HistogramId, v: u64) {
        let Some(inner) = &self.inner else { return };
        if let Ok(mut st) = inner.state.lock() {
            st.metrics.observe(h, v);
        }
    }

    /// Start-of-span timestamp; `None` when disabled, so the matching
    /// [`Obs::record_span`] is free.
    #[inline]
    pub fn span_start(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Completes a span opened with [`Obs::span_start`] on `lane` and
    /// records it. Returns the span duration in microseconds (0 when
    /// disabled).
    pub fn record_span(
        &self,
        name: &'static str,
        lane: u32,
        start: Option<Instant>,
        args: &[(&'static str, u64)],
    ) -> u64 {
        let (Some(inner), Some(start)) = (&self.inner, start) else {
            return 0;
        };
        let ts_us = start.duration_since(inner.epoch).as_micros() as u64;
        let dur_us = start.elapsed().as_micros() as u64;
        if let Ok(mut st) = inner.state.lock() {
            st.spans.push(Span {
                name,
                cat: "audit",
                lane,
                ts_us,
                dur_us,
                args: Span::pack_args(args),
            });
        }
        dur_us
    }

    /// Snapshot of the merged metrics (a disabled, empty shard when
    /// the handle is noop). The span ring's drop count is folded into
    /// the `spans_dropped` counter, so a saturated ring is visible in
    /// every metrics surface, not just the JSON export.
    pub fn metrics_snapshot(&self) -> MetricsShard {
        match &self.inner {
            Some(inner) => match inner.state.lock() {
                Ok(st) => {
                    let mut m = st.metrics;
                    let dropped = st.spans.dropped();
                    if dropped > 0 {
                        m.count(CounterId::SpansDropped, dropped);
                    }
                    m
                }
                Err(_) => MetricsShard::new(false),
            },
            None => MetricsShard::new(false),
        }
    }

    /// Snapshot of the assembled cost ledger (empty when noop).
    pub fn ledger_snapshot(&self) -> CostLedger {
        match &self.inner {
            Some(inner) => match inner.state.lock() {
                Ok(st) => st.ledger.clone(),
                Err(_) => CostLedger::default(),
            },
            None => CostLedger::default(),
        }
    }

    /// Appends one served-request row to the ledger. The collector
    /// calls this once per request, in ascending request order, after
    /// the server run completes.
    pub fn record_request_cost(&self, cost: RequestCost) {
        let Some(inner) = &self.inner else { return };
        if let Ok(mut st) = inner.state.lock() {
            st.ledger.requests.push(cost);
        }
    }

    /// The live progress heartbeat (`None` when noop). Workers update
    /// it through the convenience methods below; pollers snapshot it
    /// without touching the metrics mutex.
    pub fn progress(&self) -> Option<&Progress> {
        self.inner.as_ref().map(|i| &i.progress)
    }

    /// A point-in-time progress reading (all-zero idle when noop).
    pub fn progress_snapshot(&self) -> ProgressSnapshot {
        match &self.inner {
            Some(inner) => inner.progress.snapshot(),
            None => ProgressSnapshot::default(),
        }
    }

    /// Enter audit phase `phase` on the heartbeat.
    #[inline]
    pub fn progress_phase(&self, phase: Phase) {
        if let Some(inner) = &self.inner {
            inner.progress.set_phase(phase);
        }
    }

    /// Announce the replay's total group count.
    #[inline]
    pub fn progress_replay_total(&self, total: u64) {
        if let Some(inner) = &self.inner {
            inner.progress.set_replay_total(total);
        }
    }

    /// One group finished replaying, spending `fuel`.
    #[inline]
    pub fn progress_group_replayed(&self, fuel: u64) {
        if let Some(inner) = &self.inner {
            inner.progress.group_replayed(fuel);
        }
    }

    /// A group hard-failed; lower the early-abort floor.
    #[inline]
    pub fn progress_floor(&self, group: u64) {
        if let Some(inner) = &self.inner {
            inner.progress.note_floor(group);
        }
    }

    /// The current state as one Prometheus text-format page (metrics,
    /// progress heartbeat, ledger totals).
    pub fn prometheus_text(&self) -> String {
        prom::prometheus_text(
            &self.metrics_snapshot(),
            &self.progress_snapshot(),
            Some(&self.ledger_snapshot().totals()),
        )
    }

    /// Snapshot of the retained spans in insertion order, including
    /// the drop count folded into the `spans_dropped` counter of
    /// [`Obs::metrics_snapshot`] exports.
    pub fn spans_snapshot(&self) -> Vec<Span> {
        match &self.inner {
            Some(inner) => match inner.state.lock() {
                Ok(st) => st.spans.snapshot(),
                Err(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Metrics JSON export: [`MetricsShard::to_json`]'s sections
    /// (with the ring's drop count folded into `spans_dropped`) plus
    /// `"progress"` and `"ledger"` — the full shape
    /// `schema/metrics.schema.json` pins.
    pub fn metrics_json(&self) -> String {
        let shard_json = self.metrics_snapshot().to_json();
        // `to_json` ends with "}\n"; splice the extra sections in
        // before the closing brace.
        let trimmed = shard_json.trim_end();
        let base = trimmed.strip_suffix('}').unwrap_or(trimmed);
        let mut out = String::with_capacity(shard_json.len() + 1024);
        out.push_str(base.trim_end());
        out.push_str(",\n  \"progress\": ");
        out.push_str(&self.progress_snapshot().to_json());
        out.push_str(",\n  \"ledger\": ");
        out.push_str(&self.ledger_snapshot().to_json());
        out.push_str("\n}\n");
        out
    }

    /// Chrome `trace_event` JSON export of the retained spans.
    pub fn trace_json(&self) -> String {
        chrome_trace_json(&self.spans_snapshot())
    }
}

/// A lock-free, allocation-free-at-rest recording surface for one
/// lane (worker). Created via [`Obs::shard`] (or
/// [`ObsShard::disabled`] for the default noop), filled locally, and
/// handed back to the handle with [`Obs::absorb`].
#[derive(Debug, Clone)]
pub struct ObsShard {
    lane: u32,
    epoch: Instant,
    /// The shard's metrics (public so absorbers can inspect/merge).
    pub metrics: MetricsShard,
    spans: Vec<Span>,
    group_costs: Vec<GroupCost>,
}

impl Default for ObsShard {
    fn default() -> Self {
        ObsShard::disabled()
    }
}

impl ObsShard {
    /// A disabled shard: every record call is a no-op and no heap is
    /// touched.
    pub fn disabled() -> Self {
        ObsShard {
            lane: 0,
            epoch: Instant::now(),
            metrics: MetricsShard::new(false),
            spans: Vec::new(),
            group_costs: Vec::new(),
        }
    }

    /// Whether record calls do anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled()
    }

    /// The lane this shard records under.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Add `n` to counter `c`.
    #[inline]
    pub fn count(&mut self, c: CounterId, n: u64) {
        self.metrics.count(c, n);
    }

    /// Record one observation of `v` in histogram `h`.
    #[inline]
    pub fn observe(&mut self, h: HistogramId, v: u64) {
        self.metrics.observe(h, v);
    }

    /// Start-of-span timestamp; `None` when disabled.
    #[inline]
    pub fn span_start(&self) -> Option<Instant> {
        if self.metrics.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Completes a span opened with [`ObsShard::span_start`] and
    /// records it locally. Returns the duration in microseconds (0
    /// when disabled).
    pub fn record_span(
        &mut self,
        name: &'static str,
        start: Option<Instant>,
        args: &[(&'static str, u64)],
    ) -> u64 {
        let Some(start) = start else { return 0 };
        let ts_us = start.duration_since(self.epoch).as_micros() as u64;
        let dur_us = start.elapsed().as_micros() as u64;
        self.spans.push(Span {
            name,
            cat: "audit",
            lane: self.lane,
            ts_us,
            dur_us,
            args: Span::pack_args(args),
        });
        dur_us
    }

    /// Spans recorded into this shard so far.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Records one group's cost-ledger row (no-op when disabled). The
    /// rows land in the assembled [`CostLedger`] in absorb order — the
    /// verifier absorbs shards in ascending group order, which is what
    /// keeps the ledger bit-identical across replay configurations.
    pub fn record_group_cost(&mut self, cost: GroupCost) {
        if self.metrics.is_enabled() {
            self.group_costs.push(cost);
        }
    }

    /// Group-cost rows recorded into this shard so far.
    pub fn group_costs(&self) -> &[GroupCost] {
        &self.group_costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_records_nothing_and_shards_are_disabled() {
        let obs = Obs::noop();
        obs.count(CounterId::GroupsFormed, 3);
        let t = obs.span_start();
        assert!(t.is_none());
        assert_eq!(obs.record_span("x", 0, t, &[]), 0);
        let mut shard = obs.shard(5);
        assert!(!shard.is_enabled());
        shard.count(CounterId::GroupsFormed, 3);
        let st = shard.span_start();
        assert!(st.is_none());
        obs.absorb(shard);
        assert_eq!(obs.metrics_snapshot().counter(CounterId::GroupsFormed), 0);
        assert!(obs.spans_snapshot().is_empty());
    }

    #[test]
    fn enabled_handle_merges_shards_and_orders_spans() {
        let obs = Obs::with_capacity(8);
        let t = obs.span_start();
        obs.record_span("preprocess", 0, t, &[]);
        let mut a = obs.shard(1);
        a.count(CounterId::DictFeeds, 2);
        let ta = a.span_start();
        a.record_span("group-replay", ta, &[("group", 0)]);
        let mut b = obs.shard(2);
        b.count(CounterId::DictFeeds, 5);
        obs.absorb(a);
        obs.absorb(b);
        let m = obs.metrics_snapshot();
        assert_eq!(m.counter(CounterId::DictFeeds), 7);
        let spans = obs.spans_snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "preprocess");
        assert_eq!(spans[1].lane, 1);
        assert_eq!(spans[1].args[0], Some(("group", 0)));
    }

    #[test]
    fn trace_json_is_emitted_for_enabled_handle() {
        let obs = Obs::enabled();
        let t = obs.span_start();
        obs.record_span("cycle-check", 0, t, &[("visits", 42)]);
        let json = obs.trace_json();
        assert!(json.contains("\"cycle-check\""));
        assert!(json.contains("\"visits\":42"));
        let metrics = obs.metrics_json();
        assert!(metrics.contains("\"cycle_check_visits\": 0"));
    }
}
