//! Prometheus text-format exposition for a live audit.
//!
//! Three pieces, all std-only:
//!
//! * [`prometheus_text`] renders a metrics snapshot + progress
//!   heartbeat + ledger totals as Prometheus exposition format 0.0.4
//!   (counters as `*_total`, histograms with cumulative `le` buckets).
//! * [`check_exposition`] validates a rendered page (well-formed
//!   families, numeric non-negative samples, cumulative buckets) —
//!   CI's "is the scrape surface sane" gate, shared with the harness's
//!   `validate-prom` subcommand.
//! * [`PromExporter`] is the background thread: it periodically
//!   re-renders an `Obs` handle to a file (write-temp + atomic rename,
//!   so a scraper never reads a torn page) and optionally serves the
//!   page over a tiny blocking-free HTTP listener
//!   (`KAROUSOS_PROM_ADDR`), making a long audit scrapable mid-flight.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::ledger::LedgerTotals;
use crate::metrics::{bucket_bound, CounterId, GaugeId, HistogramId, MetricsShard};
use crate::progress::ProgressSnapshot;
use crate::Obs;

/// Metric-name prefix for every exported family.
pub const PREFIX: &str = "karousos";

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Renders one scrape page from a metrics snapshot, a progress
/// heartbeat, and (optionally) ledger totals.
pub fn prometheus_text(
    metrics: &MetricsShard,
    progress: &ProgressSnapshot,
    ledger: Option<&LedgerTotals>,
) -> String {
    let mut out = String::with_capacity(8192);
    for c in CounterId::ALL {
        let name = format!("{PREFIX}_{}_total", c.name());
        family(&mut out, &name, "counter", "audit counter");
        out.push_str(&format!("{name} {}\n", metrics.counter(c)));
    }
    for g in GaugeId::ALL {
        let name = format!("{PREFIX}_{}", g.name());
        family(&mut out, &name, "gauge", "audit gauge");
        out.push_str(&format!("{name} {}\n", metrics.gauge_value(g).unwrap_or(0)));
    }
    for h in HistogramId::ALL {
        let name = format!("{PREFIX}_{}", h.name());
        family(&mut out, &name, "histogram", "audit histogram");
        let counts = metrics.histogram(h);
        let mut cumulative = 0u64;
        for (i, n) in counts.iter().enumerate() {
            cumulative += n;
            match bucket_bound(i) {
                Some(b) => out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cumulative}\n")),
                None => out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n")),
            }
        }
        out.push_str(&format!("{name}_sum {}\n", metrics.histogram_sum(h)));
        out.push_str(&format!("{name}_count {cumulative}\n"));
    }
    // Progress heartbeat: gauges (they reset per audit run, but are
    // monotone within one run — the mid-flight liveness signal).
    let phase = format!("{PREFIX}_progress_phase");
    family(
        &mut out,
        &phase,
        "gauge",
        "audit phase (0 idle, 1 decode, 2 preprocess, 3 replay, 4 graph_merge, 5 cycle_check, 6 done, 7 rejected)",
    );
    out.push_str(&format!("{phase} {}\n", progress.phase as u8));
    for (suffix, v) in [
        ("progress_groups_total", progress.groups_total),
        ("progress_groups_done", progress.groups_done),
        ("progress_fuel_spent", progress.fuel_spent),
    ] {
        let name = format!("{PREFIX}_{suffix}");
        family(&mut out, &name, "gauge", "audit progress");
        out.push_str(&format!("{name} {v}\n"));
    }
    let floor = format!("{PREFIX}_progress_failed_floor");
    family(
        &mut out,
        &floor,
        "gauge",
        "smallest hard-failed group (-1 when none)",
    );
    match progress.failed_floor {
        Some(g) => out.push_str(&format!("{floor} {g}\n")),
        None => out.push_str(&format!("{floor} -1\n")),
    }
    if let Some(t) = ledger {
        for (suffix, v) in [
            ("ledger_groups", t.groups),
            ("ledger_requests", t.requests),
            ("ledger_fuel", t.fuel),
            ("ledger_ops", t.ops),
            ("ledger_dict_feeds", t.dict_feeds),
            ("ledger_var_accesses", t.var_accesses),
            ("ledger_alloc_events", t.alloc_events),
        ] {
            let name = format!("{PREFIX}_{suffix}");
            family(&mut out, &name, "gauge", "cost-ledger column sum");
            out.push_str(&format!("{name} {v}\n"));
        }
    }
    out
}

/// Validates one exposition page: every sample belongs to a declared
/// `# TYPE` family, every value is a finite non-negative number
/// (except the `-1` floor sentinel, which is gauge-typed), counter
/// samples end in `_total`, and histogram buckets are cumulative with
/// ascending `le` bounds ending in `+Inf` and a matching `_count`.
pub fn check_exposition(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    // Per-histogram running state: (last le bound, last cumulative
    // count, saw +Inf, final cumulative).
    let mut hist: HashMap<String, (f64, u64, bool, u64)> = HashMap::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                return Err(format!("line {lineno}: malformed TYPE line"));
            };
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown metric type {kind}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.split_once(' ') {
            Some(p) => p,
            None => return Err(format!("line {lineno}: sample has no value")),
        };
        let (name, labels) = match name_part.split_once('{') {
            Some((n, l)) => {
                let Some(l) = l.strip_suffix('}') else {
                    return Err(format!("line {lineno}: unterminated label set"));
                };
                (n, Some(l))
            }
            None => (name_part, None),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {lineno}: invalid metric name {name:?}"));
        }
        let value: f64 = value_part
            .trim()
            .parse()
            .map_err(|_| format!("line {lineno}: non-numeric value {value_part:?}"))?;
        if !value.is_finite() {
            return Err(format!("line {lineno}: non-finite value"));
        }
        // The family is the name minus histogram sample suffixes.
        let fam = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| {
                let base = name.strip_suffix(s)?;
                (types.get(base).map(String::as_str) == Some("histogram")).then_some(base)
            })
            .unwrap_or(name);
        let Some(kind) = types.get(fam) else {
            return Err(format!("line {lineno}: sample {name} has no TYPE family"));
        };
        samples += 1;
        match kind.as_str() {
            "counter" => {
                if !name.ends_with("_total") {
                    return Err(format!("line {lineno}: counter {name} must end in _total"));
                }
                if value < 0.0 {
                    return Err(format!("line {lineno}: negative counter {name}"));
                }
            }
            // Gauges may be negative only for the documented floor
            // sentinel.
            "gauge" if value < 0.0 && !(name.ends_with("failed_floor") && value == -1.0) => {
                return Err(format!("line {lineno}: unexpected negative gauge {name}"));
            }
            "gauge" => {}
            "histogram" => {
                if value < 0.0 {
                    return Err(format!("line {lineno}: negative histogram sample {name}"));
                }
                let entry =
                    hist.entry(fam.to_string())
                        .or_insert((f64::NEG_INFINITY, 0, false, u64::MAX));
                if name.ends_with("_bucket") {
                    let le = labels
                        .and_then(|l| l.strip_prefix("le=\""))
                        .and_then(|l| l.strip_suffix('"'))
                        .ok_or_else(|| format!("line {lineno}: bucket without le label"))?;
                    let bound = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse()
                            .map_err(|_| format!("line {lineno}: bad le bound {le:?}"))?
                    };
                    if bound <= entry.0 {
                        return Err(format!("line {lineno}: le bounds not ascending in {fam}"));
                    }
                    if (value as u64) < entry.1 {
                        return Err(format!(
                            "line {lineno}: bucket counts not cumulative in {fam}"
                        ));
                    }
                    entry.0 = bound;
                    entry.1 = value as u64;
                    if bound.is_infinite() {
                        entry.2 = true;
                    }
                } else if name.ends_with("_count") {
                    entry.3 = value as u64;
                }
            }
            _ => {}
        }
    }
    for (fam, (_, last_cumulative, saw_inf, count)) in &hist {
        if !saw_inf {
            return Err(format!("histogram {fam} has no +Inf bucket"));
        }
        if *count != u64::MAX && count != last_cumulative {
            return Err(format!(
                "histogram {fam}: _count {count} != +Inf bucket {last_cumulative}"
            ));
        }
    }
    if samples == 0 {
        return Err("page contains no samples".to_string());
    }
    Ok(())
}

/// Writes `text` to `path` via a sibling temp file and an atomic
/// rename, so a concurrent reader always sees a complete page.
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// How often the exporter re-renders when the caller passes no
/// interval.
pub const DEFAULT_SCRAPE_INTERVAL: Duration = Duration::from_millis(250);

/// Background exposition: one thread re-rendering an [`Obs`] handle to
/// a file and/or a TCP listener until dropped or [`PromExporter::stop`]
/// is called (both write one final page, so the file always ends on
/// the run's last state).
pub struct PromExporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    addr: Option<SocketAddr>,
}

impl std::fmt::Debug for PromExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PromExporter")
            .field("addr", &self.addr)
            .finish()
    }
}

impl PromExporter {
    /// Starts the exporter. `file` is re-rendered every `interval`
    /// with an atomic rename; `addr` (e.g. `127.0.0.1:0`) additionally
    /// serves the page over HTTP. At least one sink must be given.
    pub fn start(
        obs: Obs,
        file: Option<PathBuf>,
        addr: Option<&str>,
        interval: Duration,
    ) -> std::io::Result<PromExporter> {
        if file.is_none() && addr.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "prometheus exporter needs a file and/or a listen address",
            ));
        }
        let listener = match addr {
            Some(a) => {
                let l = TcpListener::bind(a)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let bound = listener.as_ref().and_then(|l| l.local_addr().ok());
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let tick = Duration::from_millis(20);
        let handle = std::thread::Builder::new()
            .name("prom-exporter".to_string())
            .spawn(move || {
                let mut since_render = interval; // render immediately
                loop {
                    let stopping = stop_flag.load(Ordering::Relaxed);
                    if stopping || since_render >= interval {
                        since_render = Duration::ZERO;
                        if let Some(path) = &file {
                            let _ = write_atomic(path, &obs.prometheus_text());
                        }
                    }
                    if let Some(l) = &listener {
                        while let Ok((stream, _)) = l.accept() {
                            serve_one(stream, &obs.prometheus_text());
                        }
                    }
                    if stopping {
                        break;
                    }
                    std::thread::sleep(tick);
                    since_render += tick;
                }
            })?;
        Ok(PromExporter {
            stop,
            handle: Some(handle),
            addr: bound,
        })
    }

    /// The bound listen address, when serving HTTP (useful with port
    /// 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Stops the exporter after one final render, joining the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PromExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answers one HTTP exchange with the rendered page (request bytes are
/// drained best-effort and otherwise ignored — every path serves the
/// metrics page).
fn serve_one(mut stream: TcpStream, body: &str) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::Phase;

    fn page() -> String {
        let mut m = MetricsShard::new(true);
        m.count(CounterId::GroupsFormed, 5);
        m.observe(HistogramId::GroupSize, 3);
        m.observe(HistogramId::GroupSize, 900);
        let p = ProgressSnapshot {
            phase: Phase::Replay,
            groups_total: 5,
            groups_done: 2,
            fuel_spent: 77,
            failed_floor: None,
        };
        prometheus_text(&m, &p, Some(&LedgerTotals::default()))
    }

    #[test]
    fn rendered_page_validates() {
        let text = page();
        assert!(text.contains("karousos_groups_formed_total 5"));
        assert!(text.contains("karousos_progress_groups_done 2"));
        assert!(text.contains("karousos_ledger_fuel 0"));
        check_exposition(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = page();
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("karousos_group_size_bucket"))
            .unwrap_or("");
        assert!(last_bucket.contains("le=\"+Inf\""));
        assert!(last_bucket.ends_with(" 2"), "got {last_bucket:?}");
        assert!(text.contains("karousos_group_size_count 2"));
    }

    #[test]
    fn validator_rejects_breakage() {
        assert!(check_exposition("").is_err());
        assert!(check_exposition("orphan_sample 3\n").is_err());
        assert!(
            check_exposition("# TYPE x counter\nx 1\n").is_err(),
            "counter without _total must fail"
        );
        assert!(check_exposition("# TYPE x_total counter\nx_total nan\n").is_err());
        assert!(check_exposition("# TYPE x_total counter\nx_total -2\n").is_err());
        let noncumulative = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 3\n";
        assert!(check_exposition(noncumulative).is_err());
        let ok = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n";
        check_exposition(ok).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn exporter_serves_http_and_writes_file() {
        let obs = Obs::enabled();
        obs.count(CounterId::GroupsFormed, 2);
        let dir = std::env::temp_dir().join(format!("karousos-prom-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("metrics.prom");
        let exporter = PromExporter::start(
            obs.clone(),
            Some(path.clone()),
            Some("127.0.0.1:0"),
            Duration::from_millis(10),
        )
        .unwrap_or_else(|e| panic!("exporter start failed: {e}"));
        let addr = exporter.local_addr().unwrap_or_else(|| panic!("no addr"));
        // HTTP round trip.
        let mut resp = String::new();
        for _ in 0..50 {
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
                let mut body = String::new();
                if s.read_to_string(&mut body).is_ok() && body.contains("karousos_") {
                    resp = body;
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "got {resp:?}");
        assert!(resp.contains("karousos_groups_formed_total 2"));
        exporter.stop();
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("final page not written: {e}"));
        check_exposition(&text).unwrap_or_else(|e| panic!("invalid file page: {e}"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
