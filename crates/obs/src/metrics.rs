//! Named-instrument metrics registry: counters, gauges, and
//! fixed-bucket histograms.
//!
//! The registry is *catalog-based*: every instrument is a variant of
//! [`CounterId`], [`GaugeId`], or [`HistogramId`], so a shard's
//! storage is a handful of fixed-size inline arrays — creating a
//! shard performs **no heap allocation**, and recording into one is a
//! branch plus an array store. Shards are merged deterministically
//! (counters and histogram buckets add; the absorbing side's gauge
//! wins only when the absorbed shard never set it), mirroring the
//! ascending-group-order merge the verifier already uses for edge
//! fragments.

/// Number of histogram buckets: powers of two `2^0 .. 2^14` plus one
/// overflow bucket.
pub const NUM_BUCKETS: usize = 16;

/// Monotone counters tracked by the audit pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterId {
    /// Request groups formed from the advice tags.
    GroupsFormed,
    /// Replay operations executed once per group (multivalue collapse
    /// numerator; see also [`CounterId::ExpandedOps`]).
    UniformOps,
    /// Replay operations after per-request expansion (multivalue
    /// collapse denominator).
    ExpandedOps,
    /// Reads fed from the advice dictionary (nearest R-preceding
    /// write) instead of a logged entry.
    DictFeeds,
    /// Reads satisfied by a logged var-log entry.
    LoggedReads,
    /// Var-log entries shipped in the advice: R-concurrent accesses
    /// the collector logged, plus their backfilled dictating writes.
    RConcurrentOpsLogged,
    /// Handler-log entries recorded by the collector / consumed by
    /// the verifier.
    HandlerOpsLogged,
    /// Transaction-log entries recorded / consumed.
    TxOpsLogged,
    /// Nondeterministic values recorded / consumed.
    NondetLogged,
    /// Time-precedence edges added to the execution graph.
    EdgesTime,
    /// Program-order edges added.
    EdgesProgram,
    /// Request/response boundary edges added.
    EdgesBoundary,
    /// Activation edges added.
    EdgesActivation,
    /// Handler-log precedence edges added.
    EdgesHandlerLog,
    /// External-state (kv PUT→GET) write-read edges added.
    EdgesExternalWr,
    /// Internal-state write-read edges added.
    EdgesVarWr,
    /// Internal-state write-write edges added.
    EdgesVarWw,
    /// Internal-state read-write (anti-dependency) edges added.
    EdgesVarRw,
    /// Nodes visited by the cycle check's DFS.
    CycleCheckVisits,
    /// Advice bytes decoded from the wire format.
    BytesDecoded,
    /// String bytes the decode phase copied out of the wire buffer
    /// into owned storage (the zero-copy decoder's residual copies).
    DecodeBytesCopied,
    /// Spans dropped because the ring-buffer recorder wrapped.
    SpansDropped,
    /// Replay fuel spent across all groups (one unit per statement
    /// executed and expression node evaluated; deterministic at every
    /// threads×pipeline configuration).
    ReplayFuelSpent,
    /// Bytecode instructions dispatched by the VM replay loop across
    /// all groups (zero when `KAROUSOS_BYTECODE` selects the
    /// tree-walk).
    BytecodeOps,
    /// Groups quarantined to a `ResourceExhausted`/`VerifierInternal`
    /// verdict instead of stopping the whole audit.
    GroupsQuarantined,
    /// Worker panics caught and converted into quarantined
    /// `VerifierInternal` verdicts by the replay supervisor.
    PanicsCaught,
}

impl CounterId {
    /// Every counter, in catalog order.
    pub const ALL: [CounterId; 26] = [
        CounterId::GroupsFormed,
        CounterId::UniformOps,
        CounterId::ExpandedOps,
        CounterId::DictFeeds,
        CounterId::LoggedReads,
        CounterId::RConcurrentOpsLogged,
        CounterId::HandlerOpsLogged,
        CounterId::TxOpsLogged,
        CounterId::NondetLogged,
        CounterId::EdgesTime,
        CounterId::EdgesProgram,
        CounterId::EdgesBoundary,
        CounterId::EdgesActivation,
        CounterId::EdgesHandlerLog,
        CounterId::EdgesExternalWr,
        CounterId::EdgesVarWr,
        CounterId::EdgesVarWw,
        CounterId::EdgesVarRw,
        CounterId::CycleCheckVisits,
        CounterId::BytesDecoded,
        CounterId::DecodeBytesCopied,
        CounterId::SpansDropped,
        CounterId::ReplayFuelSpent,
        CounterId::BytecodeOps,
        CounterId::GroupsQuarantined,
        CounterId::PanicsCaught,
    ];

    /// Number of counters in the catalog.
    pub const COUNT: usize = CounterId::ALL.len();

    /// Stable snake_case instrument name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::GroupsFormed => "groups_formed",
            CounterId::UniformOps => "uniform_ops",
            CounterId::ExpandedOps => "expanded_ops",
            CounterId::DictFeeds => "dict_feeds",
            CounterId::LoggedReads => "logged_reads",
            CounterId::RConcurrentOpsLogged => "r_concurrent_ops_logged",
            CounterId::HandlerOpsLogged => "handler_ops_logged",
            CounterId::TxOpsLogged => "tx_ops_logged",
            CounterId::NondetLogged => "nondet_logged",
            CounterId::EdgesTime => "edges_time",
            CounterId::EdgesProgram => "edges_program",
            CounterId::EdgesBoundary => "edges_boundary",
            CounterId::EdgesActivation => "edges_activation",
            CounterId::EdgesHandlerLog => "edges_handler_log",
            CounterId::EdgesExternalWr => "edges_external_wr",
            CounterId::EdgesVarWr => "edges_wr",
            CounterId::EdgesVarWw => "edges_ww",
            CounterId::EdgesVarRw => "edges_rw",
            CounterId::CycleCheckVisits => "cycle_check_visits",
            CounterId::BytesDecoded => "bytes_decoded",
            CounterId::DecodeBytesCopied => "decode_bytes_copied",
            CounterId::SpansDropped => "spans_dropped",
            CounterId::ReplayFuelSpent => "replay_fuel_spent",
            CounterId::BytecodeOps => "bytecode_ops",
            CounterId::GroupsQuarantined => "groups_quarantined",
            CounterId::PanicsCaught => "panics_caught",
        }
    }
}

/// Point-in-time gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum GaugeId {
    /// Execution-graph node count after preprocessing + merge.
    GraphNodes,
    /// Execution-graph edge count after preprocessing + merge.
    GraphEdges,
    /// Worker threads used by the parallel verifier.
    WorkerThreads,
    /// Replay-fuel budget remaining after the hungriest group
    /// (`limits.replay_fuel - max(per-group fuel spent)`) — how close
    /// the audit came to a `ResourceExhausted` verdict.
    FuelHeadroom,
    /// Heap-resident bytes of the advice the audit ran over: the wire
    /// size for an in-memory buffer, `0` for a memory-mapped advice
    /// file (mapped pages are the page cache's, not the heap's).
    AdviceBytesResident,
}

impl GaugeId {
    /// Every gauge, in catalog order.
    pub const ALL: [GaugeId; 5] = [
        GaugeId::GraphNodes,
        GaugeId::GraphEdges,
        GaugeId::WorkerThreads,
        GaugeId::FuelHeadroom,
        GaugeId::AdviceBytesResident,
    ];

    /// Number of gauges in the catalog.
    pub const COUNT: usize = GaugeId::ALL.len();

    /// Stable snake_case instrument name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::GraphNodes => "graph_nodes",
            GaugeId::GraphEdges => "graph_edges",
            GaugeId::WorkerThreads => "worker_threads",
            GaugeId::FuelHeadroom => "fuel_headroom",
            GaugeId::AdviceBytesResident => "advice_bytes_resident",
        }
    }
}

/// Fixed-bucket (power-of-two bounds) histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistogramId {
    /// Requests per replay group.
    GroupSize,
    /// Wall-clock microseconds spent replaying one group.
    GroupReplayUs,
    /// Entries per variable log in the advice.
    VarLogLen,
    /// Replay fuel spent per group.
    GroupFuelSpent,
}

impl HistogramId {
    /// Every histogram, in catalog order.
    pub const ALL: [HistogramId; 4] = [
        HistogramId::GroupSize,
        HistogramId::GroupReplayUs,
        HistogramId::VarLogLen,
        HistogramId::GroupFuelSpent,
    ];

    /// Number of histograms in the catalog.
    pub const COUNT: usize = HistogramId::ALL.len();

    /// Stable snake_case instrument name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            HistogramId::GroupSize => "group_size",
            HistogramId::GroupReplayUs => "group_replay_us",
            HistogramId::VarLogLen => "var_log_len",
            HistogramId::GroupFuelSpent => "group_fuel_spent",
        }
    }
}

/// Upper bound (inclusive) of bucket `i`, or `None` for the overflow
/// bucket.
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i + 1 < NUM_BUCKETS {
        Some(1u64 << i)
    } else {
        None
    }
}

/// Index of the bucket a value falls into: bucket `i` holds values
/// `v <= 2^i`; values above the last finite bound land in the
/// overflow bucket.
pub fn bucket_index(v: u64) -> usize {
    for i in 0..NUM_BUCKETS - 1 {
        if v <= (1u64 << i) {
            return i;
        }
    }
    NUM_BUCKETS - 1
}

/// One thread's (or one group's) worth of metrics: fixed inline
/// arrays, no heap storage. Disabled shards take the early-return
/// branch on every record call.
#[derive(Debug, Clone, Copy)]
pub struct MetricsShard {
    enabled: bool,
    counters: [u64; CounterId::COUNT],
    gauges: [Option<u64>; GaugeId::COUNT],
    buckets: [[u64; NUM_BUCKETS]; HistogramId::COUNT],
    sums: [u64; HistogramId::COUNT],
}

impl MetricsShard {
    /// A new shard; `enabled: false` makes every record call a no-op.
    pub fn new(enabled: bool) -> Self {
        MetricsShard {
            enabled,
            counters: [0; CounterId::COUNT],
            gauges: [None; GaugeId::COUNT],
            buckets: [[0; NUM_BUCKETS]; HistogramId::COUNT],
            sums: [0; HistogramId::COUNT],
        }
    }

    /// Whether record calls do anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Add `n` to counter `c`.
    #[inline]
    pub fn count(&mut self, c: CounterId, n: u64) {
        if self.enabled {
            self.counters[c as usize] = self.counters[c as usize].wrapping_add(n);
        }
    }

    /// Set gauge `g` to `v`.
    #[inline]
    pub fn gauge(&mut self, g: GaugeId, v: u64) {
        if self.enabled {
            self.gauges[g as usize] = Some(v);
        }
    }

    /// Record one observation of `v` in histogram `h`.
    #[inline]
    pub fn observe(&mut self, h: HistogramId, v: u64) {
        if self.enabled {
            self.buckets[h as usize][bucket_index(v)] += 1;
            self.sums[h as usize] = self.sums[h as usize].wrapping_add(v);
        }
    }

    /// Fold `other` into `self`: counters and buckets add; a gauge set
    /// in `other` overwrites `self`'s (last-merged-wins, which is
    /// deterministic because shards are absorbed in ascending group
    /// order).
    pub fn merge(&mut self, other: &MetricsShard) {
        for i in 0..CounterId::COUNT {
            self.counters[i] = self.counters[i].wrapping_add(other.counters[i]);
        }
        for i in 0..GaugeId::COUNT {
            if let Some(v) = other.gauges[i] {
                self.gauges[i] = Some(v);
            }
        }
        for h in 0..HistogramId::COUNT {
            for b in 0..NUM_BUCKETS {
                self.buckets[h][b] += other.buckets[h][b];
            }
            self.sums[h] = self.sums[h].wrapping_add(other.sums[h]);
        }
    }

    /// Current value of counter `c`.
    pub fn counter(&self, c: CounterId) -> u64 {
        self.counters[c as usize]
    }

    /// Current value of gauge `g`, if it was ever set.
    pub fn gauge_value(&self, g: GaugeId) -> Option<u64> {
        self.gauges[g as usize]
    }

    /// Bucket counts of histogram `h`.
    pub fn histogram(&self, h: HistogramId) -> [u64; NUM_BUCKETS] {
        self.buckets[h as usize]
    }

    /// Total observations recorded in histogram `h`.
    pub fn histogram_count(&self, h: HistogramId) -> u64 {
        self.buckets[h as usize].iter().sum()
    }

    /// Sum of all values observed in histogram `h`.
    pub fn histogram_sum(&self, h: HistogramId) -> u64 {
        self.sums[h as usize]
    }

    /// Serialize the shard as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histogram_bounds": [...],
    ///   "histograms": {"name": {"counts": [...], "total": n, "sum": n}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, c) in CounterId::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", c.name(), self.counter(*c)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in GaugeId::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match self.gauge_value(*g) {
                Some(v) => out.push_str(&format!("\n    \"{}\": {}", g.name(), v)),
                None => out.push_str(&format!("\n    \"{}\": null", g.name())),
            }
        }
        out.push_str("\n  },\n  \"histogram_bounds\": [");
        for i in 0..NUM_BUCKETS {
            if i > 0 {
                out.push(',');
            }
            match bucket_bound(i) {
                Some(b) => out.push_str(&b.to_string()),
                None => out.push_str("null"),
            }
        }
        out.push_str("],\n  \"histograms\": {");
        for (i, h) in HistogramId::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {{\"counts\": [", h.name()));
            let counts = self.histogram(*h);
            for (b, n) in counts.iter().enumerate() {
                if b > 0 {
                    out.push(',');
                }
                out.push_str(&n.to_string());
            }
            out.push_str(&format!(
                "], \"total\": {}, \"sum\": {}}}",
                self.histogram_count(*h),
                self.histogram_sum(*h)
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_power_of_two_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 14), NUM_BUCKETS - 2);
        assert_eq!(bucket_index((1 << 14) + 1), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_match_index() {
        for i in 0..NUM_BUCKETS {
            if let Some(b) = bucket_bound(i) {
                assert_eq!(bucket_index(b), i, "bound of bucket {i} maps back");
                if b > 1 {
                    assert_eq!(
                        bucket_index(b + 1),
                        i + 1,
                        "bound of bucket {i} is inclusive"
                    );
                }
            }
        }
    }

    #[test]
    fn disabled_shard_records_nothing() {
        let mut s = MetricsShard::new(false);
        s.count(CounterId::GroupsFormed, 7);
        s.gauge(GaugeId::GraphNodes, 9);
        s.observe(HistogramId::GroupSize, 3);
        assert_eq!(s.counter(CounterId::GroupsFormed), 0);
        assert_eq!(s.gauge_value(GaugeId::GraphNodes), None);
        assert_eq!(s.histogram_count(HistogramId::GroupSize), 0);
    }

    #[test]
    fn merge_is_deterministic_and_order_invariant_for_counters() {
        // Counters and histograms commute; merging shards in any order
        // yields the same totals (the verifier still merges in
        // ascending group order so that gauges are deterministic too).
        let mut shards = Vec::new();
        for k in 0..5u64 {
            let mut s = MetricsShard::new(true);
            s.count(CounterId::DictFeeds, k + 1);
            s.observe(HistogramId::GroupSize, k + 1);
            s.observe(HistogramId::GroupSize, 100 * (k + 1));
            shards.push(s);
        }
        let mut fwd = MetricsShard::new(true);
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = MetricsShard::new(true);
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd.counter(CounterId::DictFeeds), 15);
        assert_eq!(rev.counter(CounterId::DictFeeds), 15);
        assert_eq!(
            fwd.histogram(HistogramId::GroupSize),
            rev.histogram(HistogramId::GroupSize)
        );
        assert_eq!(fwd.histogram_count(HistogramId::GroupSize), 10);
        assert_eq!(
            fwd.histogram_sum(HistogramId::GroupSize),
            (1..=5).map(|k| k + 100 * k).sum::<u64>()
        );
    }

    #[test]
    fn merge_gauge_last_wins() {
        let mut a = MetricsShard::new(true);
        a.gauge(GaugeId::WorkerThreads, 1);
        let mut b = MetricsShard::new(true);
        b.gauge(GaugeId::WorkerThreads, 4);
        let unset = MetricsShard::new(true);
        let mut m = MetricsShard::new(true);
        m.merge(&a);
        m.merge(&b);
        m.merge(&unset);
        assert_eq!(m.gauge_value(GaugeId::WorkerThreads), Some(4));
    }

    #[test]
    fn to_json_mentions_every_instrument() {
        let mut s = MetricsShard::new(true);
        s.count(CounterId::EdgesTime, 3);
        let json = s.to_json();
        for c in CounterId::ALL {
            assert!(
                json.contains(&format!("\"{}\"", c.name())),
                "missing {}",
                c.name()
            );
        }
        for g in GaugeId::ALL {
            assert!(json.contains(&format!("\"{}\"", g.name())));
        }
        for h in HistogramId::ALL {
            assert!(json.contains(&format!("\"{}\"", h.name())));
        }
        assert!(json.contains("\"edges_time\": 3"));
    }
}
