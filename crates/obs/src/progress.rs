//! Live audit progress: an atomics-only heartbeat that worker threads
//! update as groups replay and that any thread can snapshot without
//! taking the obs mutex.
//!
//! The [`Progress`] struct is the scrape surface for a long-running
//! audit: phase, groups replayed / total, fuel spent, and the
//! early-abort floor. Every field is a relaxed atomic — the counters
//! are monotone within one audit (each worker only ever adds), so a
//! mid-flight [`ProgressSnapshot`] is always consistent enough to
//! answer "is it moving?" even while workers race, and the snapshot
//! itself never blocks replay.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// The audit phase a [`Progress`] heartbeat reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// No audit has started on this handle.
    Idle = 0,
    /// Decoding wire-form advice.
    Decode = 1,
    /// Advice checks, OpMap and base-graph construction, isolation.
    Preprocess = 2,
    /// Group replay (the parallel section).
    Replay = 3,
    /// Variable-stream merge + internal-state edge embedding.
    GraphMerge = 4,
    /// The post-merge acyclicity traversal.
    CycleCheck = 5,
    /// The audit ACCEPTed.
    Done = 6,
    /// The audit REJECTed.
    Rejected = 7,
}

impl Phase {
    /// Stable lower-snake name (used in JSON and Prometheus exports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::Decode => "decode",
            Phase::Preprocess => "preprocess",
            Phase::Replay => "replay",
            Phase::GraphMerge => "graph_merge",
            Phase::CycleCheck => "cycle_check",
            Phase::Done => "done",
            Phase::Rejected => "rejected",
        }
    }

    fn from_u8(v: u8) -> Phase {
        match v {
            1 => Phase::Decode,
            2 => Phase::Preprocess,
            3 => Phase::Replay,
            4 => Phase::GraphMerge,
            5 => Phase::CycleCheck,
            6 => Phase::Done,
            7 => Phase::Rejected,
            _ => Phase::Idle,
        }
    }
}

/// Sentinel for "no early-abort floor": no group has hard-failed.
const NO_FLOOR: u64 = u64::MAX;

/// The atomics-only heartbeat. Lives inside the enabled `Obs` handle;
/// the noop handle has none and every update is an early return.
#[derive(Debug)]
pub struct Progress {
    phase: AtomicU8,
    groups_total: AtomicU64,
    groups_done: AtomicU64,
    fuel_spent: AtomicU64,
    floor: AtomicU64,
}

impl Default for Progress {
    fn default() -> Self {
        Progress::new()
    }
}

impl Progress {
    /// A fresh heartbeat: idle, nothing replayed, no floor.
    pub fn new() -> Self {
        Progress {
            phase: AtomicU8::new(Phase::Idle as u8),
            groups_total: AtomicU64::new(0),
            groups_done: AtomicU64::new(0),
            fuel_spent: AtomicU64::new(0),
            floor: AtomicU64::new(NO_FLOOR),
        }
    }

    /// Enter `phase`.
    pub fn set_phase(&self, phase: Phase) {
        self.phase.store(phase as u8, Ordering::Relaxed);
    }

    /// Announce the replay's group count (called once, before any
    /// group replays).
    pub fn set_replay_total(&self, total: u64) {
        self.groups_total.store(total, Ordering::Relaxed);
    }

    /// One group finished replaying, spending `fuel` units.
    pub fn group_replayed(&self, fuel: u64) {
        self.groups_done.fetch_add(1, Ordering::Relaxed);
        self.fuel_spent.fetch_add(fuel, Ordering::Relaxed);
    }

    /// A group hard-failed: lower the early-abort floor to `group`
    /// (keeps the minimum across racing workers).
    pub fn note_floor(&self, group: u64) {
        self.floor.fetch_min(group, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time reading.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            phase: Phase::from_u8(self.phase.load(Ordering::Relaxed)),
            groups_total: self.groups_total.load(Ordering::Relaxed),
            groups_done: self.groups_done.load(Ordering::Relaxed),
            fuel_spent: self.fuel_spent.load(Ordering::Relaxed),
            failed_floor: match self.floor.load(Ordering::Relaxed) {
                NO_FLOOR => None,
                g => Some(g),
            },
        }
    }
}

/// A point-in-time reading of a [`Progress`] heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// The phase the audit is in.
    pub phase: Phase,
    /// Total replay groups (0 until replay starts).
    pub groups_total: u64,
    /// Groups that have finished replaying.
    pub groups_done: u64,
    /// Fuel spent by finished groups.
    pub fuel_spent: u64,
    /// Smallest hard-failed group index, if any group hard-failed.
    pub failed_floor: Option<u64>,
}

impl Default for ProgressSnapshot {
    fn default() -> Self {
        ProgressSnapshot {
            phase: Phase::Idle,
            groups_total: 0,
            groups_done: 0,
            fuel_spent: 0,
            failed_floor: None,
        }
    }
}

impl ProgressSnapshot {
    /// The snapshot as a JSON object (one line, no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"phase\": \"{}\", \"groups_total\": {}, \"groups_done\": {}, \"fuel_spent\": {}, \"failed_floor\": {}}}",
            self.phase.name(),
            self.groups_total,
            self.groups_done,
            self.fuel_spent,
            match self.failed_floor {
                Some(g) => g.to_string(),
                None => "null".to_string(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_accumulate_and_snapshot() {
        let p = Progress::new();
        assert_eq!(p.snapshot(), ProgressSnapshot::default());
        p.set_phase(Phase::Replay);
        p.set_replay_total(4);
        p.group_replayed(10);
        p.group_replayed(32);
        let s = p.snapshot();
        assert_eq!(s.phase, Phase::Replay);
        assert_eq!(s.groups_total, 4);
        assert_eq!(s.groups_done, 2);
        assert_eq!(s.fuel_spent, 42);
        assert_eq!(s.failed_floor, None);
    }

    #[test]
    fn floor_keeps_minimum() {
        let p = Progress::new();
        p.note_floor(7);
        p.note_floor(3);
        p.note_floor(9);
        assert_eq!(p.snapshot().failed_floor, Some(3));
    }

    #[test]
    fn snapshot_json_shape() {
        let p = Progress::new();
        p.set_phase(Phase::Done);
        let j = p.snapshot().to_json();
        assert!(j.contains("\"phase\": \"done\""));
        assert!(j.contains("\"failed_floor\": null"));
    }
}
