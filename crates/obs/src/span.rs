//! Structured span tracing with a fixed-capacity ring-buffer
//! recorder and a Chrome `trace_event` JSON exporter.
//!
//! Spans are *complete events*: name, lane (rendered as a Chrome
//! `tid`, one lane per verifier worker), start timestamp relative to
//! the recorder's epoch, and duration, plus up to
//! [`MAX_SPAN_ARGS`] small integer arguments (group id, group size,
//! handler-tree digest, ...). The export loads directly into
//! `chrome://tracing` or <https://ui.perfetto.dev>.

/// Maximum number of `(key, value)` arguments a span carries inline.
pub const MAX_SPAN_ARGS: usize = 3;

/// One completed span. `Copy` and heap-free: names and argument keys
/// are `'static`, values are integers.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Human-readable span name (Chrome `name`).
    pub name: &'static str,
    /// Category tag (Chrome `cat`).
    pub cat: &'static str,
    /// Lane the span ran on: worker index for group replay, 0 for the
    /// coordinator phases. Rendered as the Chrome `tid`.
    pub lane: u32,
    /// Start time in microseconds since the recorder epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Inline arguments; `None` slots are unused.
    pub args: [Option<(&'static str, u64)>; MAX_SPAN_ARGS],
}

impl Span {
    /// Builds the inline argument array from a slice (extra entries
    /// beyond [`MAX_SPAN_ARGS`] are dropped).
    pub fn pack_args(args: &[(&'static str, u64)]) -> [Option<(&'static str, u64)>; MAX_SPAN_ARGS] {
        let mut packed = [None; MAX_SPAN_ARGS];
        for (slot, kv) in packed.iter_mut().zip(args.iter()) {
            *slot = Some(*kv);
        }
        packed
    }
}

/// Fixed-capacity ring buffer of spans. Once full, the oldest span is
/// overwritten and the drop is counted (surfaced as the
/// `spans_dropped` counter by the registry).
#[derive(Debug, Clone)]
pub struct SpanRing {
    cap: usize,
    buf: Vec<Span>,
    head: usize,
    dropped: u64,
}

impl SpanRing {
    /// A ring holding at most `cap` spans (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        SpanRing {
            cap: cap.max(1),
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Record one span, overwriting the oldest if the ring is full.
    pub fn push(&mut self, s: Span) {
        if self.buf.len() < self.cap {
            self.buf.push(s);
        } else {
            self.buf[self.head] = s;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of spans overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained spans in insertion order (oldest first).
    pub fn snapshot(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Renders spans as Chrome `trace_event` JSON (the "JSON array
/// format" wrapped in a `traceEvents` object), loadable in
/// `chrome://tracing` and Perfetto. Each span becomes a complete
/// (`"ph": "X"`) event; the lane becomes the `tid`.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{",
            s.name, s.cat, s.lane, s.ts_us, s.dur_us
        ));
        let mut first = true;
        for kv in s.args.iter().flatten() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", kv.0, kv.1));
        }
        out.push_str("}}");
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, lane: u32, ts: u64) -> Span {
        Span {
            name,
            cat: "test",
            lane,
            ts_us: ts,
            dur_us: 5,
            args: Span::pack_args(&[("k", 1)]),
        }
    }

    #[test]
    fn ring_keeps_insertion_order_before_wrap() {
        let mut r = SpanRing::new(4);
        for i in 0..3 {
            r.push(span("a", 0, i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|s| s.ts_us).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut r = SpanRing::new(3);
        for i in 0..5 {
            r.push(span("a", 0, i));
        }
        let snap = r.snapshot();
        assert_eq!(
            snap.iter().map(|s| s.ts_us).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn chrome_export_shape() {
        let spans = [span("replay", 2, 10)];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"replay\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"args\":{\"k\":1}"));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn pack_args_drops_extras() {
        let packed = Span::pack_args(&[("a", 1), ("b", 2), ("c", 3), ("d", 4)]);
        assert_eq!(packed, [Some(("a", 1)), Some(("b", 2)), Some(("c", 3))]);
    }
}
