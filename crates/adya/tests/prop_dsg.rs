//! Property tests for the direct serialization graph.

use adya::{check_isolation, Dsg, EdgeKind, HistoryBuilder, IsolationLevel, TxnId};
use proptest::prelude::*;

/// A random sequential history: transactions run one at a time, each
/// reading keys (from the latest committed installer) and writing keys.
/// Such histories are serial by construction, so they must pass every
/// isolation level.
fn serial_history(ops: Vec<(u8, bool, u8)>) -> adya::History {
    let mut b = HistoryBuilder::new();
    // last committed final write per key: (txn, index)
    let mut installed: std::collections::HashMap<u8, (TxnId, u32)> = Default::default();
    let mut txn = 0u64;
    let mut pending: Vec<(u8, u32)> = Vec::new(); // key → op index of last put
    for (key, is_write, commit_roll) in ops {
        let id = TxnId(txn);
        b.touch(id);
        if is_write {
            let r = b.put(id, &format!("k{key}"));
            pending.retain(|(k, _)| *k != key);
            pending.push((key, r.index));
        } else {
            let from = installed.get(&key).copied();
            b.get(id, &format!("k{key}"), from);
        }
        if commit_roll % 3 == 0 {
            // Commit this transaction: its pending writes install.
            b.commit(id);
            for (k, i) in pending.drain(..) {
                installed.insert(k, (id, i));
            }
            txn += 1;
        } else if commit_roll % 7 == 0 {
            // Abort: nothing installs.
            pending.clear();
            txn += 1;
        }
    }
    // Abandon (abort) the trailing transaction.
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serial histories pass all three levels.
    #[test]
    fn serial_histories_pass_everything(ops in prop::collection::vec((0u8..3, any::<bool>(), 0u8..21), 1..40)) {
        let h = serial_history(ops);
        for level in [
            IsolationLevel::ReadUncommitted,
            IsolationLevel::ReadCommitted,
            IsolationLevel::Serializable,
        ] {
            prop_assert!(check_isolation(&h, level).is_ok(), "level {level:?}");
        }
    }

    /// DSG edges never originate from or point to uncommitted
    /// transactions, and never self-loop.
    #[test]
    fn dsg_edges_are_between_distinct_committed_txns(ops in prop::collection::vec((0u8..3, any::<bool>(), 0u8..21), 1..40)) {
        let h = serial_history(ops);
        let g = Dsg::build(&h);
        let nodes: std::collections::HashSet<TxnId> = g.nodes().collect();
        for (a, b, _) in g.edges() {
            prop_assert!(a != b, "self loop {a:?}");
            prop_assert!(nodes.contains(&a) && nodes.contains(&b));
            prop_assert!(h.is_committed(a) && h.is_committed(b));
        }
    }

    /// Write-dependency edges per key form a path (no branching): each
    /// transaction has at most one ww successor per key chain in a
    /// serial history.
    #[test]
    fn ww_edges_follow_version_order_shape(ops in prop::collection::vec((0u8..2, any::<bool>(), 0u8..21), 1..40)) {
        let h = serial_history(ops);
        let g = Dsg::build(&h);
        // In a serial history the ww subgraph must be acyclic.
        prop_assert!(g.find_cycle(&[EdgeKind::WriteDepend]).is_none());
    }
}

/// Reading the initial state of a key whose first version was installed
/// earlier creates an anti-dependency that breaks serializability when
/// it contradicts a read dependency.
#[test]
fn init_read_anti_dependency_cycles() {
    let mut b = HistoryBuilder::new();
    // T0 installs k. T1 reads k's *initial* state (claims it ran
    // before T0) but also reads a value T0 wrote to another key j —
    // contradiction.
    b.put(TxnId(0), "k");
    b.put(TxnId(0), "j");
    b.commit(TxnId(0));
    b.get(TxnId(1), "k", None); // initial read ⇒ T1 → T0 (anti)
    b.get(TxnId(1), "j", Some((TxnId(0), 1))); // reads T0 ⇒ T0 → T1 (wr)
    b.commit(TxnId(1));
    let h = b.finish();
    assert!(check_isolation(&h, IsolationLevel::ReadCommitted).is_ok());
    assert!(matches!(
        check_isolation(&h, IsolationLevel::Serializable),
        Err(adya::Violation::G2 { .. })
    ));
}
