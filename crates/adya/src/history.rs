//! Transactional histories: the input to Adya's algorithms.
//!
//! A history is (a) the per-transaction operation sequences, each `GET`
//! annotated with its dictating write (the *TxOp order* in the paper's
//! terminology), and (b) a *version order*: a global total order over the
//! installed (final, committed) writes of each key. In Karousos, (a)
//! comes from the transaction logs and (b) from the `writeOrder` advice.

use std::collections::BTreeMap;

/// Identifier of a transaction in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// A reference to an operation: the `index`-th operation of `txn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpRef {
    /// The issuing transaction.
    pub txn: TxnId,
    /// Zero-based position within that transaction's operation list.
    pub index: u32,
}

/// One operation in a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A write of `key`. Values are irrelevant to isolation testing; only
    /// write identity matters.
    Put {
        /// The written key.
        key: String,
    },
    /// A read of `key`, dictated by the write `from` (`None` = the
    /// initial, never-written state).
    Get {
        /// The read key.
        key: String,
        /// The dictating write, if any.
        from: Option<OpRef>,
    },
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> &str {
        match self {
            Op::Put { key } | Op::Get { key, .. } => key,
        }
    }
}

/// The record of a single transaction within a history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnRecord {
    /// The transaction's operations, in issue order.
    pub ops: Vec<Op>,
    /// Whether the transaction committed.
    pub committed: bool,
}

impl TxnRecord {
    /// Index of the final `PUT` to `key`, if the transaction wrote it.
    pub fn last_put_to(&self, key: &str) -> Option<u32> {
        self.ops
            .iter()
            .enumerate()
            .rev()
            .find(|(_, op)| matches!(op, Op::Put { key: k } if k == key))
            .map(|(i, _)| i as u32)
    }
}

/// A complete history: transactions plus the global version order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    /// Every transaction, keyed by id.
    pub txns: BTreeMap<TxnId, TxnRecord>,
    /// Installed writes in version order. Each entry must reference a
    /// `PUT`; [`check_isolation`](crate::check_isolation) validates this.
    pub version_order: Vec<OpRef>,
}

impl History {
    /// Looks up the operation referenced by `r`, if it exists.
    pub fn op(&self, r: OpRef) -> Option<&Op> {
        self.txns.get(&r.txn)?.ops.get(r.index as usize)
    }

    /// Whether `txn` committed.
    pub fn is_committed(&self, txn: TxnId) -> bool {
        self.txns.get(&txn).is_some_and(|t| t.committed)
    }

    /// The version order restricted to `key`, in order.
    pub fn version_order_of(&self, key: &str) -> Vec<OpRef> {
        self.version_order
            .iter()
            .copied()
            .filter(|r| self.op(*r).is_some_and(|op| op.key() == key))
            .collect()
    }

    /// Every key mentioned anywhere in the history, deduplicated.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .txns
            .values()
            .flat_map(|t| t.ops.iter().map(|op| op.key().to_string()))
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

/// Incremental builder producing a [`History`].
///
/// The builder also derives a *default version order* — committed final
/// writes in commit order — which is what a correctly behaving store
/// produces (it matches the `kvstore` binlog). Callers that have an
/// explicit version order (the Karousos verifier, with its untrusted
/// `writeOrder` advice) should override it with
/// [`HistoryBuilder::set_version_order`].
#[derive(Debug, Clone, Default)]
pub struct HistoryBuilder {
    txns: BTreeMap<TxnId, TxnRecord>,
    commit_order: Vec<TxnId>,
    explicit_version_order: Option<Vec<OpRef>>,
}

impl HistoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a `PUT` by `txn`, returning its [`OpRef`].
    pub fn put(&mut self, txn: TxnId, key: &str) -> OpRef {
        let rec = self.txns.entry(txn).or_default();
        rec.ops.push(Op::Put {
            key: key.to_string(),
        });
        OpRef {
            txn,
            index: (rec.ops.len() - 1) as u32,
        }
    }

    /// Records a `GET` by `txn` dictated by `from` (a `(txn, index)`
    /// pair, or `None` for the initial state), returning its [`OpRef`].
    pub fn get(&mut self, txn: TxnId, key: &str, from: Option<(TxnId, u32)>) -> OpRef {
        let rec = self.txns.entry(txn).or_default();
        rec.ops.push(Op::Get {
            key: key.to_string(),
            from: from.map(|(t, i)| OpRef { txn: t, index: i }),
        });
        OpRef {
            txn,
            index: (rec.ops.len() - 1) as u32,
        }
    }

    /// Marks `txn` committed.
    pub fn commit(&mut self, txn: TxnId) {
        let rec = self.txns.entry(txn).or_default();
        rec.committed = true;
        self.commit_order.push(txn);
    }

    /// Ensures `txn` exists (useful for explicitly-aborted transactions).
    pub fn touch(&mut self, txn: TxnId) {
        self.txns.entry(txn).or_default();
    }

    /// Overrides the derived version order.
    pub fn set_version_order(&mut self, order: Vec<OpRef>) {
        self.explicit_version_order = Some(order);
    }

    /// Finalizes the history.
    pub fn finish(self) -> History {
        let version_order = match self.explicit_version_order {
            Some(o) => o,
            None => {
                // Derived order: for each commit (in commit order), the
                // final PUT per key in first-PUT order — the same shape
                // the kvstore binlog has.
                let mut order = Vec::new();
                for txn in &self.commit_order {
                    let rec = &self.txns[txn];
                    let mut seen = Vec::new();
                    for op in &rec.ops {
                        if let Op::Put { key } = op {
                            if !seen.iter().any(|k| k == key) {
                                seen.push(key.clone());
                            }
                        }
                    }
                    for key in seen {
                        let index = rec
                            .last_put_to(&key)
                            .expect("key came from a PUT of this txn");
                        order.push(OpRef { txn: *txn, index });
                    }
                }
                order
            }
        };
        History {
            txns: self.txns,
            version_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_derives_binlog_like_version_order() {
        let mut b = HistoryBuilder::new();
        b.put(TxnId(0), "a");
        b.put(TxnId(0), "b");
        b.put(TxnId(0), "a"); // final write to a is index 2
        b.commit(TxnId(0));
        b.put(TxnId(1), "a");
        b.commit(TxnId(1));
        let h = b.finish();
        assert_eq!(
            h.version_order,
            vec![
                OpRef {
                    txn: TxnId(0),
                    index: 2
                },
                OpRef {
                    txn: TxnId(0),
                    index: 1
                },
                OpRef {
                    txn: TxnId(1),
                    index: 0
                },
            ]
        );
        assert_eq!(h.version_order_of("a").len(), 2);
        assert_eq!(h.version_order_of("b").len(), 1);
    }

    #[test]
    fn aborted_txns_not_in_version_order() {
        let mut b = HistoryBuilder::new();
        b.put(TxnId(0), "a");
        // no commit
        let h = b.finish();
        assert!(h.version_order.is_empty());
        assert!(!h.is_committed(TxnId(0)));
    }

    #[test]
    fn op_lookup_and_keys() {
        let mut b = HistoryBuilder::new();
        let p = b.put(TxnId(0), "x");
        b.get(TxnId(1), "x", Some((TxnId(0), 0)));
        let h = b.finish();
        assert!(matches!(h.op(p), Some(Op::Put { .. })));
        assert!(h
            .op(OpRef {
                txn: TxnId(9),
                index: 0
            })
            .is_none());
        assert_eq!(h.keys(), vec!["x".to_string()]);
    }

    #[test]
    fn last_put_to_finds_final_write() {
        let rec = TxnRecord {
            ops: vec![
                Op::Put { key: "k".into() },
                Op::Get {
                    key: "k".into(),
                    from: None,
                },
                Op::Put { key: "k".into() },
            ],
            committed: true,
        };
        assert_eq!(rec.last_put_to("k"), Some(2));
        assert_eq!(rec.last_put_to("other"), None);
    }
}
