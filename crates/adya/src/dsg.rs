//! The direct serialization graph (DSG).
//!
//! Nodes are committed transactions; edges are the three dependency
//! kinds of Adya's theory (§4.4 of the paper):
//!
//! * **read-depend** (`wr`): `T2` reads a version installed by `T1`;
//! * **write-depend** (`ww`): `T1` installs a version of a key and `T2`
//!   installs the next version (per the version order);
//! * **anti-depend** (`rw`): `T1` reads a version of a key and `T2`
//!   installs the next version.

use std::collections::{BTreeMap, BTreeSet};

use crate::history::{History, Op, TxnId};

/// The kind of a DSG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Write-depend (`ww`).
    WriteDepend,
    /// Read-depend (`wr`).
    ReadDepend,
    /// Anti-depend (`rw`).
    AntiDepend,
}

/// A direct serialization graph over committed transactions.
#[derive(Debug, Clone, Default)]
pub struct Dsg {
    nodes: BTreeSet<TxnId>,
    edges: BTreeSet<(TxnId, TxnId, EdgeKind)>,
}

impl Dsg {
    /// Builds the DSG of `history`.
    ///
    /// Reads from aborted transactions, intermediate writes, or dangling
    /// references produce no edges here — they are reported as phenomena
    /// by [`check_isolation`](crate::check_isolation) instead.
    pub fn build(history: &History) -> Self {
        let mut g = Dsg::default();
        for (txn, rec) in &history.txns {
            if rec.committed {
                g.nodes.insert(*txn);
            }
        }

        // Read-depend edges from every committed GET whose dictating
        // write belongs to a committed installer.
        for (txn, rec) in &history.txns {
            if !rec.committed {
                continue;
            }
            for op in &rec.ops {
                if let Op::Get { from: Some(w), .. } = op {
                    if w.txn != *txn && history.is_committed(w.txn) {
                        g.edges.insert((w.txn, *txn, EdgeKind::ReadDepend));
                    }
                }
            }
        }

        // Write-depend edges between consecutive installers of each key,
        // and anti-depend edges from readers of a version to the
        // installer of the next version.
        let mut readers: BTreeMap<(TxnId, u32), Vec<TxnId>> = BTreeMap::new();
        let mut init_readers: BTreeMap<&str, Vec<TxnId>> = BTreeMap::new();
        for (txn, rec) in &history.txns {
            if !rec.committed {
                continue;
            }
            for op in &rec.ops {
                match op {
                    Op::Get { from: Some(w), .. } => {
                        readers.entry((w.txn, w.index)).or_default().push(*txn);
                    }
                    Op::Get { key, from: None } => {
                        init_readers.entry(key.as_str()).or_default().push(*txn);
                    }
                    Op::Put { .. } => {}
                }
            }
        }
        for key in history.keys() {
            let order = history.version_order_of(&key);
            // A read of the initial (never-written) state anti-depends
            // on the installer of the key's first version.
            if let Some(first) = order.first() {
                if let Some(rs) = init_readers.get(key.as_str()) {
                    for r in rs {
                        if *r != first.txn {
                            g.edges.insert((*r, first.txn, EdgeKind::AntiDepend));
                        }
                    }
                }
            }
            for pair in order.windows(2) {
                let (w1, w2) = (pair[0], pair[1]);
                if w1.txn != w2.txn {
                    g.edges.insert((w1.txn, w2.txn, EdgeKind::WriteDepend));
                }
                if let Some(rs) = readers.get(&(w1.txn, w1.index)) {
                    for r in rs {
                        if *r != w2.txn {
                            g.edges.insert((*r, w2.txn, EdgeKind::AntiDepend));
                        }
                    }
                }
            }
        }
        g
    }

    /// The committed transactions.
    pub fn nodes(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.nodes.iter().copied()
    }

    /// All edges as `(from, to, kind)`.
    pub fn edges(&self) -> impl Iterator<Item = (TxnId, TxnId, EdgeKind)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the subgraph restricted to `kinds` contains a cycle; if
    /// so, returns one node on the cycle.
    pub fn find_cycle(&self, kinds: &[EdgeKind]) -> Option<TxnId> {
        let mut adj: BTreeMap<TxnId, Vec<TxnId>> = BTreeMap::new();
        for n in &self.nodes {
            adj.entry(*n).or_default();
        }
        for (a, b, k) in &self.edges {
            if kinds.contains(k) {
                adj.entry(*a).or_default().push(*b);
                adj.entry(*b).or_default();
            }
        }
        // Iterative three-colour DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<TxnId, Colour> = adj.keys().map(|&n| (n, Colour::White)).collect();
        let roots: Vec<TxnId> = adj.keys().copied().collect();
        for root in roots {
            if colour[&root] != Colour::White {
                continue;
            }
            // Stack of (node, next-child-index).
            let mut stack: Vec<(TxnId, usize)> = vec![(root, 0)];
            colour.insert(root, Colour::Grey);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = &adj[&node];
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match colour[&child] {
                        Colour::Grey => return Some(child),
                        Colour::White => {
                            colour.insert(child, Colour::Grey);
                            stack.push((child, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour.insert(node, Colour::Black);
                    stack.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    #[test]
    fn simple_wr_edge() {
        let mut b = HistoryBuilder::new();
        b.put(TxnId(0), "x");
        b.commit(TxnId(0));
        b.get(TxnId(1), "x", Some((TxnId(0), 0)));
        b.commit(TxnId(1));
        let g = Dsg::build(&b.finish());
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(TxnId(0), TxnId(1), EdgeKind::ReadDepend)]);
        assert!(g
            .find_cycle(&[EdgeKind::ReadDepend, EdgeKind::WriteDepend])
            .is_none());
    }

    #[test]
    fn ww_edges_follow_version_order() {
        let mut b = HistoryBuilder::new();
        b.put(TxnId(0), "x");
        b.commit(TxnId(0));
        b.put(TxnId(1), "x");
        b.commit(TxnId(1));
        let g = Dsg::build(&b.finish());
        assert!(g
            .edges()
            .any(|e| e == (TxnId(0), TxnId(1), EdgeKind::WriteDepend)));
    }

    #[test]
    fn anti_dependency_edge() {
        // T1 reads x0 (installed by T0); T2 installs x1 ⇒ T1 --rw--> T2.
        let mut b = HistoryBuilder::new();
        b.put(TxnId(0), "x");
        b.commit(TxnId(0));
        b.get(TxnId(1), "x", Some((TxnId(0), 0)));
        b.commit(TxnId(1));
        b.put(TxnId(2), "x");
        b.commit(TxnId(2));
        let g = Dsg::build(&b.finish());
        assert!(g
            .edges()
            .any(|e| e == (TxnId(1), TxnId(2), EdgeKind::AntiDepend)));
    }

    #[test]
    fn write_skew_forms_g2_cycle() {
        // T1 reads x0, writes y1; T2 reads y0, writes x1: rw edges both
        // ways, a cycle only once anti-dependencies are considered.
        let mut b = HistoryBuilder::new();
        b.put(TxnId(0), "x");
        b.put(TxnId(0), "y");
        b.commit(TxnId(0));
        b.get(TxnId(1), "x", Some((TxnId(0), 0)));
        b.put(TxnId(1), "y");
        b.commit(TxnId(1));
        b.get(TxnId(2), "y", Some((TxnId(0), 1)));
        b.put(TxnId(2), "x");
        b.commit(TxnId(2));
        let g = Dsg::build(&b.finish());
        assert!(g
            .find_cycle(&[EdgeKind::ReadDepend, EdgeKind::WriteDepend])
            .is_none());
        assert!(g
            .find_cycle(&[
                EdgeKind::ReadDepend,
                EdgeKind::WriteDepend,
                EdgeKind::AntiDepend
            ])
            .is_some());
    }

    #[test]
    fn uncommitted_readers_produce_no_edges() {
        let mut b = HistoryBuilder::new();
        b.put(TxnId(0), "x");
        b.commit(TxnId(0));
        b.get(TxnId(1), "x", Some((TxnId(0), 0)));
        // TxnId(1) never commits.
        let g = Dsg::build(&b.finish());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 1);
    }

    #[test]
    fn self_reads_produce_no_edges() {
        let mut b = HistoryBuilder::new();
        let w = b.put(TxnId(0), "x");
        b.get(TxnId(0), "x", Some((w.txn, w.index)));
        b.commit(TxnId(0));
        let g = Dsg::build(&b.finish());
        assert_eq!(g.edge_count(), 0);
    }
}
