//! Adya-style isolation testing for transactional key-value histories.
//!
//! Karousos's verifier checks the isolation level of the (alleged) store
//! history using Adya's algorithms (EuroSys '24 paper, §4.4): build a
//! *direct serialization graph* whose nodes are committed transactions
//! and whose edges are read-, write-, and anti-dependencies, then test
//! for the phenomena proscribed by the target level:
//!
//! | Level | Proscribed phenomena |
//! |---|---|
//! | read uncommitted | G0 (write-dependency cycles) |
//! | read committed | G0, G1a (aborted reads), G1b (intermediate reads), G1c (dependency cycles) |
//! | serializability | all of the above plus G2 (cycles including anti-dependencies) |
//!
//! This crate implements the history representation ([`History`],
//! [`HistoryBuilder`]), the graph ([`Dsg`]), and the per-level check
//! ([`check_isolation`]). It is used two ways in this repository:
//!
//! 1. By the Karousos verifier, against the *alleged* history decoded
//!    from untrusted advice (the verification is provisional and is
//!    cross-checked against re-execution, per §4.4).
//! 2. By the substrate test-suite, against the *true* history recorded by
//!    the `kvstore` crate, to validate that the store provides the
//!    isolation level it claims.
//!
//! # Examples
//!
//! ```
//! use adya::{check_isolation, HistoryBuilder, IsolationLevel, TxnId};
//!
//! let mut b = HistoryBuilder::new();
//! b.put(TxnId(0), "x");
//! b.commit(TxnId(0));
//! b.get(TxnId(1), "x", Some((TxnId(0), 0)));
//! b.commit(TxnId(1));
//! let history = b.finish();
//! assert!(check_isolation(&history, IsolationLevel::Serializable).is_ok());
//! ```

mod check;
mod dsg;
mod history;

pub use check::{check_isolation, Violation};
pub use dsg::{Dsg, EdgeKind};
pub use history::{History, HistoryBuilder, Op, OpRef, TxnId, TxnRecord};

/// The isolation level to check a history against.
///
/// Mirrors `kvstore::IsolationLevel`; the two are kept separate so this
/// crate stays dependency-free, with conversions done by callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationLevel {
    /// PL-1: proscribes G0.
    ReadUncommitted,
    /// PL-2: proscribes G0 and G1 (G1a, G1b, G1c).
    ReadCommitted,
    /// PL-3: proscribes G0, G1, and G2.
    Serializable,
}
