//! Per-level isolation checking: the phenomena tests.

use crate::dsg::{Dsg, EdgeKind};
use crate::history::{History, Op, OpRef, TxnId};
use crate::IsolationLevel;

/// A detected isolation violation (an Adya phenomenon), or a malformed
/// history that cannot be meaningfully tested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The version order references an operation that does not exist or
    /// is not a `PUT`, or an uncommitted transaction's write.
    MalformedVersionOrder {
        /// The offending entry.
        entry: OpRef,
    },
    /// The version order entry is not the transaction's final write to
    /// that key (only installed — final — writes belong there).
    NotFinalWrite {
        /// The offending entry.
        entry: OpRef,
    },
    /// G0: a cycle of write-dependency edges. `witness` lies on it.
    G0 {
        /// A transaction on the cycle.
        witness: TxnId,
    },
    /// G1a: a committed transaction read from an aborted transaction.
    G1a {
        /// The offending read.
        reader: OpRef,
    },
    /// G1b: a committed transaction read an intermediate (non-installed)
    /// write of a committed transaction.
    G1b {
        /// The offending read.
        reader: OpRef,
    },
    /// G1c: a cycle of write- and read-dependency edges.
    G1c {
        /// A transaction on the cycle.
        witness: TxnId,
    },
    /// G2: a cycle once anti-dependency edges are included.
    G2 {
        /// A transaction on the cycle.
        witness: TxnId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MalformedVersionOrder { entry } => {
                write!(
                    f,
                    "malformed version order entry ({:?} #{})",
                    entry.txn, entry.index
                )
            }
            Violation::NotFinalWrite { entry } => {
                write!(f, "version order entry is not a final write ({:?})", entry)
            }
            Violation::G0 { witness } => write!(f, "G0 write cycle through {:?}", witness),
            Violation::G1a { reader } => write!(f, "G1a aborted read at {:?}", reader),
            Violation::G1b { reader } => write!(f, "G1b intermediate read at {:?}", reader),
            Violation::G1c { witness } => write!(f, "G1c dependency cycle through {:?}", witness),
            Violation::G2 { witness } => {
                write!(f, "G2 anti-dependency cycle through {:?}", witness)
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Validates the version order itself: every entry must reference an
/// existing `PUT` of a committed transaction, and must be that
/// transaction's final write to the key.
fn check_version_order(history: &History) -> Result<(), Violation> {
    for entry in &history.version_order {
        let op = history
            .op(*entry)
            .ok_or(Violation::MalformedVersionOrder { entry: *entry })?;
        let key = match op {
            Op::Put { key } => key.clone(),
            Op::Get { .. } => return Err(Violation::MalformedVersionOrder { entry: *entry }),
        };
        if !history.is_committed(entry.txn) {
            return Err(Violation::MalformedVersionOrder { entry: *entry });
        }
        let final_index = history.txns[&entry.txn]
            .last_put_to(&key)
            .expect("a PUT to this key exists");
        if final_index != entry.index {
            return Err(Violation::NotFinalWrite { entry: *entry });
        }
    }
    Ok(())
}

/// Detects G1a and G1b aberrant reads by committed transactions.
fn check_aberrant_reads(history: &History) -> Result<(), Violation> {
    for (txn, rec) in &history.txns {
        if !rec.committed {
            continue;
        }
        for (i, op) in rec.ops.iter().enumerate() {
            let Op::Get { from: Some(w), .. } = op else {
                continue;
            };
            let reader = OpRef {
                txn: *txn,
                index: i as u32,
            };
            if w.txn == *txn {
                continue; // reads of own writes are always fine
            }
            let Some(Op::Put { .. }) = history.op(*w) else {
                return Err(Violation::G1b { reader });
            };
            if !history.is_committed(w.txn) {
                return Err(Violation::G1a { reader });
            }
            // Reading a committed transaction's non-installed write is an
            // intermediate read (G1b): installed writes are exactly the
            // version order entries.
            if !history.version_order.contains(w) {
                return Err(Violation::G1b { reader });
            }
        }
    }
    Ok(())
}

/// Checks `history` against `level`, returning the first phenomenon found.
///
/// Follows the verifier's `IsolationLvlVer` structure (paper Fig. 17):
/// read uncommitted tests only write-dependency cycles; read committed
/// additionally tests aberrant reads and read-dependency cycles;
/// serializability additionally includes anti-dependency edges. The
/// version order itself is validated first at every level.
///
/// On success, returns the constructed [`Dsg`] for further inspection.
pub fn check_isolation(history: &History, level: IsolationLevel) -> Result<Dsg, Violation> {
    check_version_order(history)?;
    let dsg = Dsg::build(history);
    match level {
        IsolationLevel::ReadUncommitted => {
            if let Some(witness) = dsg.find_cycle(&[EdgeKind::WriteDepend]) {
                return Err(Violation::G0 { witness });
            }
        }
        IsolationLevel::ReadCommitted => {
            check_aberrant_reads(history)?;
            if let Some(witness) = dsg.find_cycle(&[EdgeKind::WriteDepend, EdgeKind::ReadDepend]) {
                return Err(Violation::G1c { witness });
            }
        }
        IsolationLevel::Serializable => {
            check_aberrant_reads(history)?;
            if let Some(witness) = dsg.find_cycle(&[EdgeKind::WriteDepend, EdgeKind::ReadDepend]) {
                return Err(Violation::G1c { witness });
            }
            if let Some(witness) = dsg.find_cycle(&[
                EdgeKind::WriteDepend,
                EdgeKind::ReadDepend,
                EdgeKind::AntiDepend,
            ]) {
                return Err(Violation::G2 { witness });
            }
        }
    }
    Ok(dsg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    fn two_txn_wr() -> History {
        let mut b = HistoryBuilder::new();
        b.put(TxnId(0), "x");
        b.commit(TxnId(0));
        b.get(TxnId(1), "x", Some((TxnId(0), 0)));
        b.commit(TxnId(1));
        b.finish()
    }

    #[test]
    fn clean_history_passes_all_levels() {
        let h = two_txn_wr();
        for level in [
            IsolationLevel::ReadUncommitted,
            IsolationLevel::ReadCommitted,
            IsolationLevel::Serializable,
        ] {
            assert!(check_isolation(&h, level).is_ok(), "level {level:?}");
        }
    }

    #[test]
    fn g1a_aborted_read_detected_at_rc_not_ru() {
        let mut b = HistoryBuilder::new();
        b.put(TxnId(0), "x"); // never commits
        b.get(TxnId(1), "x", Some((TxnId(0), 0)));
        b.commit(TxnId(1));
        let h = b.finish();
        assert!(check_isolation(&h, IsolationLevel::ReadUncommitted).is_ok());
        assert!(matches!(
            check_isolation(&h, IsolationLevel::ReadCommitted),
            Err(Violation::G1a { .. })
        ));
        assert!(matches!(
            check_isolation(&h, IsolationLevel::Serializable),
            Err(Violation::G1a { .. })
        ));
    }

    #[test]
    fn g1b_intermediate_read_detected() {
        // T0 writes x twice; a reader observes the first (non-final) one.
        let mut b = HistoryBuilder::new();
        b.put(TxnId(0), "x");
        b.put(TxnId(0), "x");
        b.commit(TxnId(0));
        b.get(TxnId(1), "x", Some((TxnId(0), 0)));
        b.commit(TxnId(1));
        let h = b.finish();
        assert!(matches!(
            check_isolation(&h, IsolationLevel::ReadCommitted),
            Err(Violation::G1b { .. })
        ));
        // Read-uncommitted tolerates it.
        assert!(check_isolation(&h, IsolationLevel::ReadUncommitted).is_ok());
    }

    #[test]
    fn g0_write_cycle_detected_at_every_level() {
        // Version order interleaves T1 and T2 on two keys: x: T1,T2 but
        // y: T2,T1 ⇒ ww cycle.
        let mut b = HistoryBuilder::new();
        let w1x = b.put(TxnId(1), "x");
        let w1y = b.put(TxnId(1), "y");
        b.commit(TxnId(1));
        let w2x = b.put(TxnId(2), "x");
        let w2y = b.put(TxnId(2), "y");
        b.commit(TxnId(2));
        b.set_version_order(vec![w1x, w2x, w2y, w1y]);
        let h = b.finish();
        assert!(matches!(
            check_isolation(&h, IsolationLevel::ReadUncommitted),
            Err(Violation::G0 { .. })
        ));
    }

    #[test]
    fn g1c_wr_cycle_detected() {
        // T1 reads T2's installed write; T2 reads T1's installed write;
        // no ww cycle (different keys).
        let mut b = HistoryBuilder::new();
        let w1 = b.put(TxnId(1), "x");
        b.get(TxnId(1), "y", Some((TxnId(2), 0)));
        b.commit(TxnId(1));
        let w2 = b.put(TxnId(2), "y");
        b.get(TxnId(2), "x", Some((TxnId(1), 0)));
        b.commit(TxnId(2));
        b.set_version_order(vec![w1, w2]);
        let h = b.finish();
        assert!(check_isolation(&h, IsolationLevel::ReadUncommitted).is_ok());
        assert!(matches!(
            check_isolation(&h, IsolationLevel::ReadCommitted),
            Err(Violation::G1c { .. })
        ));
    }

    #[test]
    fn g2_write_skew_detected_only_at_serializability() {
        let mut b = HistoryBuilder::new();
        b.put(TxnId(0), "x");
        b.put(TxnId(0), "y");
        b.commit(TxnId(0));
        b.get(TxnId(1), "x", Some((TxnId(0), 0)));
        b.put(TxnId(1), "y");
        b.commit(TxnId(1));
        b.get(TxnId(2), "y", Some((TxnId(0), 1)));
        b.put(TxnId(2), "x");
        b.commit(TxnId(2));
        let h = b.finish();
        assert!(check_isolation(&h, IsolationLevel::ReadCommitted).is_ok());
        assert!(matches!(
            check_isolation(&h, IsolationLevel::Serializable),
            Err(Violation::G2 { .. })
        ));
    }

    #[test]
    fn version_order_must_reference_puts() {
        let mut b = HistoryBuilder::new();
        let g = b.get(TxnId(0), "x", None);
        b.commit(TxnId(0));
        b.set_version_order(vec![g]);
        let h = b.finish();
        assert!(matches!(
            check_isolation(&h, IsolationLevel::ReadUncommitted),
            Err(Violation::MalformedVersionOrder { .. })
        ));
    }

    #[test]
    fn version_order_must_use_final_writes() {
        let mut b = HistoryBuilder::new();
        let first = b.put(TxnId(0), "x");
        b.put(TxnId(0), "x");
        b.commit(TxnId(0));
        b.set_version_order(vec![first]);
        let h = b.finish();
        assert!(matches!(
            check_isolation(&h, IsolationLevel::ReadUncommitted),
            Err(Violation::NotFinalWrite { .. })
        ));
    }

    #[test]
    fn version_order_must_be_committed() {
        let mut b = HistoryBuilder::new();
        let w = b.put(TxnId(0), "x");
        // not committed
        b.set_version_order(vec![w]);
        let h = b.finish();
        assert!(matches!(
            check_isolation(&h, IsolationLevel::ReadUncommitted),
            Err(Violation::MalformedVersionOrder { .. })
        ));
    }

    #[test]
    fn violation_display() {
        let v = Violation::G0 { witness: TxnId(1) };
        assert!(v.to_string().contains("G0"));
    }
}
