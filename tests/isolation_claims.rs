//! Isolation-level soundness: a server running at a weak level cannot
//! pass an audit that demands a stronger one.
//!
//! The verifier's isolation check (§4.4) runs against the *alleged*
//! history. These tests produce real weak-isolation anomalies at the
//! store and confirm that (a) auditing at the deployed level ACCEPTs,
//! and (b) auditing at a stronger level REJECTs with an isolation
//! violation.

use karousos::{audit, run_instrumented_server, CollectorMode, RejectReason};
use kem::dsl::*;
use kem::{ProgramBuilder, RequestId, SchedPolicy, ServerConfig, Value};
use kvstore::IsolationLevel;

/// An app designed to produce write skew: each request reads one key
/// and writes the other, in one transaction.
fn write_skew_app() -> kem::Program {
    let mut b = ProgramBuilder::new();
    b.function("handle", vec![tx_start(payload(), "s")]);
    b.function(
        "s",
        vec![tx_get(
            field(payload(), "tx"),
            field(field(payload(), "ctx"), "read"),
            field(payload(), "ctx"),
            "got",
        )],
    );
    b.function(
        "got",
        vec![iff(
            field(payload(), "ok"),
            vec![tx_put(
                field(payload(), "tx"),
                field(field(payload(), "ctx"), "write"),
                lit(1i64),
                field(payload(), "value"),
                "put_done",
            )],
            vec![respond(lit("retry"))],
        )],
    );
    b.function(
        "put_done",
        vec![iff(
            field(payload(), "ok"),
            vec![tx_commit(
                field(payload(), "tx"),
                field(payload(), "ctx"),
                "done",
            )],
            vec![respond(lit("retry"))],
        )],
    );
    b.function(
        "done",
        vec![iff(
            field(payload(), "ok"),
            vec![respond(mapv(vec![("saw", field(payload(), "ctx"))]))],
            vec![respond(lit("retry"))],
        )],
    );
    b.request_handler("handle");
    b.build().unwrap()
}

fn skew_inputs() -> Vec<Value> {
    vec![
        Value::map([("read", Value::str("x")), ("write", Value::str("y"))]),
        Value::map([("read", Value::str("y")), ("write", Value::str("x"))]),
    ]
}

#[test]
fn weak_level_accepts_at_its_own_level() {
    let p = write_skew_app();
    for iso in IsolationLevel::ALL {
        for seed in 0..10u64 {
            let cfg = ServerConfig {
                concurrency: 2,
                isolation: iso,
                policy: SchedPolicy::Random { seed },
                ..Default::default()
            };
            let (out, advice) =
                run_instrumented_server(&p, &skew_inputs(), &cfg, CollectorMode::Karousos).unwrap();
            audit(&p, &out.trace, &advice, iso).unwrap_or_else(|e| {
                panic!("honest {iso} run rejected at its own level (seed {seed}): {e}")
            });
        }
    }
}

#[test]
fn write_skew_under_rc_rejected_when_audited_as_serializable() {
    // Find a schedule where both transactions interleave (both read the
    // initial state, both commit) under read-committed — real write
    // skew. Auditing that execution as "serializable" must fail with a
    // G2 violation.
    let p = write_skew_app();
    for seed in 0..200u64 {
        let cfg = ServerConfig {
            concurrency: 2,
            isolation: IsolationLevel::ReadCommitted,
            policy: SchedPolicy::Random { seed },
            ..Default::default()
        };
        let (out, advice) =
            run_instrumented_server(&p, &skew_inputs(), &cfg, CollectorMode::Karousos).unwrap();
        // Interesting schedule: both committed and both read initial
        // state (responses carry saw.found = false... the ctx carries
        // the read value; check both requests saw "not found").
        let both_committed = advice.write_order.len() == 2;
        if !both_committed {
            continue;
        }
        // Check the anomaly is real: each read observed the initial
        // state (no dictating write), i.e. neither saw the other's
        // committed write.
        let initial_reads = advice
            .tx_logs
            .values()
            .flatten()
            .filter(|e| matches!(&e.contents, karousos::TxOpContents::Get { from: None }))
            .count();
        if initial_reads != 2 {
            continue;
        }
        // (a) honest at RC.
        audit(&p, &out.trace, &advice, IsolationLevel::ReadCommitted)
            .expect("write skew is legal under read-committed");
        // (b) a lying deployer claiming serializability is caught.
        let err = audit(&p, &out.trace, &advice, IsolationLevel::Serializable).unwrap_err();
        assert!(
            matches!(err, RejectReason::Isolation(adya::Violation::G2 { .. })),
            "expected G2, got {err}"
        );
        return;
    }
    panic!("no write-skew schedule found in 200 seeds");
}

#[test]
fn dirty_read_under_ru_rejected_when_audited_as_read_committed() {
    // An app where request A writes-then-aborts while B reads: under
    // read-uncommitted B can observe the doomed write (G1a).
    let mut b = ProgramBuilder::new();
    b.function(
        "handle",
        vec![iff(
            eq(field(payload(), "op"), lit("poison")),
            vec![tx_start(null(), "p1")],
            vec![tx_start(null(), "r1")],
        )],
    );
    // Writer: put then (after a scheduling gap) abort.
    b.function(
        "p1",
        vec![tx_put(
            field(payload(), "tx"),
            lit("k"),
            lit(666i64),
            null(),
            "p2",
        )],
    );
    b.function(
        "p2",
        vec![iff(
            field(payload(), "ok"),
            vec![tx_abort(field(payload(), "tx"), null(), "p3")],
            vec![respond(lit("retry"))],
        )],
    );
    b.function("p3", vec![respond(lit("aborted"))]);
    // Reader: get then commit, echoing what it saw.
    b.function(
        "r1",
        vec![tx_get(field(payload(), "tx"), lit("k"), null(), "r2")],
    );
    b.function(
        "r2",
        vec![iff(
            field(payload(), "ok"),
            vec![tx_commit(
                field(payload(), "tx"),
                mapv(vec![
                    ("found", field(payload(), "found")),
                    ("v", field(payload(), "value")),
                ]),
                "r3",
            )],
            vec![respond(lit("retry"))],
        )],
    );
    b.function(
        "r3",
        vec![iff(
            field(payload(), "ok"),
            vec![respond(field(payload(), "ctx"))],
            vec![respond(lit("retry"))],
        )],
    );
    b.request_handler("handle");
    let p = b.build().unwrap();
    let inputs = vec![
        Value::map([("op", Value::str("poison"))]),
        Value::map([("op", Value::str("read"))]),
    ];

    for seed in 0..300u64 {
        let cfg = ServerConfig {
            concurrency: 2,
            isolation: IsolationLevel::ReadUncommitted,
            policy: SchedPolicy::Random { seed },
            ..Default::default()
        };
        let (out, advice) =
            run_instrumented_server(&p, &inputs, &cfg, CollectorMode::Karousos).unwrap();
        // Did the reader commit after observing the doomed value?
        let saw_dirty = out
            .trace
            .output_of(RequestId(1))
            .and_then(|v| v.field("v").cloned())
            == Some(Value::int(666));
        if !saw_dirty {
            continue;
        }
        // Honest at RU.
        audit(&p, &out.trace, &advice, IsolationLevel::ReadUncommitted)
            .expect("dirty reads are legal under read-uncommitted");
        // Claiming read-committed is caught: the committed reader read
        // from an aborted transaction (G1a).
        let err = audit(&p, &out.trace, &advice, IsolationLevel::ReadCommitted).unwrap_err();
        assert!(
            matches!(err, RejectReason::Isolation(adya::Violation::G1a { .. })),
            "expected G1a, got {err}"
        );
        return;
    }
    panic!("no dirty-read schedule found in 300 seeds");
}
