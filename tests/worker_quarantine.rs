//! Worker supervision: a panicking group worker must not wedge the
//! audit or take the process down. The panic is caught, the group is
//! quarantined to a deterministic `VerifierInternal` verdict, the
//! remaining groups still replay (graceful degradation), and obs
//! records the incident.
//!
//! This file holds a SINGLE test function on purpose: the panic
//! injection hook (`inject_group_panic_for_tests`) is a one-shot
//! process-wide latch, so a concurrently running audit in the same
//! test binary could consume the armed panic. Keeping the whole
//! matrix inside one `#[test]` serialises every audit that might
//! observe it.

use karousos::{
    audit_encoded_with_obs, encode_advice, run_instrumented_server, AuditOptions, CollectorMode,
    Limits, RejectReason,
};
use kem::dsl::*;
use kem::{Program, ProgramBuilder, SchedPolicy, ServerConfig, Value};
use kvstore::IsolationLevel;
use obs::{CounterId, HistogramId, Obs};

fn branch_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.shared_var("seen", Value::Int(0), true);
    b.function(
        "handle",
        vec![
            swrite("seen", add(sread("seen"), lit(1i64))),
            iff(
                field(payload(), "b"),
                vec![respond(lit(1i64))],
                vec![respond(lit(2i64))],
            ),
        ],
    );
    b.request_handler("handle");
    b.build().unwrap()
}

#[test]
fn panicking_worker_is_quarantined_and_other_groups_finish() {
    let program = branch_program();
    // Half the requests take each branch: two replay groups.
    let inputs: Vec<Value> = (0..8)
        .map(|i| Value::map([("b", Value::int(i % 2))]))
        .collect();
    let cfg = ServerConfig {
        concurrency: 2,
        policy: SchedPolicy::Random { seed: 41 },
        ..Default::default()
    };
    let (out, advice) =
        run_instrumented_server(&program, &inputs, &cfg, CollectorMode::Karousos).unwrap();
    let bytes = encode_advice(&advice);

    for (threads, pipeline) in [(1, false), (1, true), (4, false), (4, true)] {
        // Arm the one-shot latch: the worker replaying group 0 panics.
        karousos::verifier::inject_group_panic_for_tests(0);
        let obs = Obs::enabled();
        let opts = AuditOptions {
            pipeline,
            limits: Limits::default(),
            ..AuditOptions::with_threads(threads)
        };
        let verdict = audit_encoded_with_obs(
            &program,
            &out.trace,
            &bytes,
            IsolationLevel::Serializable,
            opts,
            &obs,
        );
        match verdict {
            Err(RejectReason::VerifierInternal { ref what }) => {
                assert!(
                    what.contains("injected"),
                    "threads={threads} pipeline={pipeline}: unexpected payload {what:?}"
                );
            }
            other => panic!(
                "threads={threads} pipeline={pipeline}: expected quarantine verdict, got {other:?}"
            ),
        }
        let shard = obs.metrics_snapshot();
        assert_eq!(
            shard.counter(CounterId::GroupsQuarantined),
            1,
            "threads={threads} pipeline={pipeline}"
        );
        assert!(
            shard.counter(CounterId::PanicsCaught) >= 1,
            "threads={threads} pipeline={pipeline}"
        );
        // Graceful degradation: the surviving group still replayed —
        // its per-group fuel sample landed in the histogram even
        // though group 0 died before reporting.
        assert!(
            shard.histogram_count(HistogramId::GroupFuelSpent) >= 1,
            "threads={threads} pipeline={pipeline}: surviving group never replayed"
        );
        assert!(
            shard.counter(CounterId::ReplayFuelSpent) > 0,
            "threads={threads} pipeline={pipeline}: no fuel accounted for surviving group"
        );
    }

    // The latch is spent: an un-armed audit over the same advice still
    // accepts, proving injection leaves no residue.
    let opts = AuditOptions::with_threads(2);
    audit_encoded_with_obs(
        &program,
        &out.trace,
        &bytes,
        IsolationLevel::Serializable,
        opts,
        &Obs::noop(),
    )
    .expect("honest advice must accept once the injected panic is consumed");
}
