//! Cost-ledger determinism: the per-group attribution rows are an
//! *audit artifact*, so their deterministic columns must be
//! bit-identical across every execution strategy — worker threads
//! {1, 4} × phase ordering {barrier, pipelined} × interpreter
//! {tree-walk, bytecode} — exactly like verdicts and metrics. The
//! advisory columns (wall-clock, allocation events) and the
//! per-interpreter `bytecode_ops` column are excluded from the
//! deterministic key by construction; this file pins both halves of
//! that contract, plus the power-of-two bucket classification the
//! Prometheus histograms are built on.

use apps::App;
use karousos::{audit_with_obs, run_instrumented_server, AuditOptions, CollectorMode};
use obs::Obs;
use proptest::prelude::*;
use workload::{Experiment, Mix};

fn wiki_run() -> (
    kem::Program,
    kem::RunOutput,
    karousos::Advice,
    kvstore::IsolationLevel,
) {
    let mut exp = Experiment::paper_default(App::Wiki, Mix::Wiki, 8, 5);
    exp.requests = 80;
    let program = App::Wiki.program();
    let inputs = exp.inputs();
    let (out, advice) = run_instrumented_server(
        &program,
        &inputs,
        &exp.server_config(),
        CollectorMode::Karousos,
    )
    .expect("wiki app runs");
    (program, out, advice, exp.isolation)
}

fn ledger_for(
    program: &kem::Program,
    out: &kem::RunOutput,
    advice: &karousos::Advice,
    iso: kvstore::IsolationLevel,
    threads: usize,
    pipeline: bool,
    bytecode: bool,
) -> obs::CostLedger {
    let obs = Obs::enabled();
    let mut opts = AuditOptions::with_threads(threads);
    opts.pipeline = pipeline;
    opts.bytecode = bytecode;
    audit_with_obs(program, &out.trace, advice, iso, opts, &obs)
        .expect("honest advice must be accepted");
    obs.ledger_snapshot()
}

#[test]
fn ledger_bit_identical_across_threads_pipeline_bytecode() {
    let (program, out, advice, iso) = wiki_run();
    let mut reference: Option<obs::CostLedger> = None;
    for threads in [1usize, 4] {
        for pipeline in [false, true] {
            for bytecode in [false, true] {
                let ledger = ledger_for(&program, &out, &advice, iso, threads, pipeline, bytecode);
                assert!(!ledger.groups.is_empty(), "wiki audit must record groups");
                // Rows arrive in ascending group order in every
                // configuration (shards are absorbed in merge order).
                for w in ledger.groups.windows(2) {
                    assert!(
                        w[0].group < w[1].group,
                        "ledger rows out of order: {} then {}",
                        w[0].group,
                        w[1].group
                    );
                }
                // bytecode_ops is the per-interpreter column: zero
                // under the tree-walk, populated under the VM.
                let vm_ops: u64 = ledger.groups.iter().map(|g| g.bytecode_ops).sum();
                if bytecode {
                    assert!(vm_ops > 0, "VM replay must meter bytecode ops");
                } else {
                    assert_eq!(vm_ops, 0, "tree-walk replay must not meter bytecode ops");
                }
                match &reference {
                    None => reference = Some(ledger),
                    Some(r) => {
                        let keys: Vec<[u64; 10]> = ledger
                            .groups
                            .iter()
                            .map(|g| g.deterministic_key())
                            .collect();
                        let ref_keys: Vec<[u64; 10]> =
                            r.groups.iter().map(|g| g.deterministic_key()).collect();
                        assert_eq!(
                            ref_keys, keys,
                            "ledger diverged at threads={threads} pipeline={pipeline} \
                             bytecode={bytecode}"
                        );
                        // Totals over the deterministic columns agree
                        // too (fuel, ops, feeds, var accesses).
                        let (rt, lt) = (r.totals(), ledger.totals());
                        assert_eq!(rt.groups, lt.groups);
                        assert_eq!(rt.requests, lt.requests);
                        assert_eq!(rt.fuel, lt.fuel);
                        assert_eq!(rt.ops, lt.ops);
                        assert_eq!(rt.dict_feeds, lt.dict_feeds);
                        assert_eq!(rt.var_accesses, lt.var_accesses);
                    }
                }
            }
        }
    }
}

#[test]
fn bytecode_ops_identical_across_schedules_within_interpreter() {
    let (program, out, advice, iso) = wiki_run();
    // The column is per-interpreter, not per-schedule: both VM cells
    // at different thread counts must meter identically.
    let a = ledger_for(&program, &out, &advice, iso, 1, false, true);
    let b = ledger_for(&program, &out, &advice, iso, 4, true, true);
    let ops = |l: &obs::CostLedger| l.groups.iter().map(|g| g.bytecode_ops).collect::<Vec<_>>();
    assert_eq!(ops(&a), ops(&b));
}

proptest! {
    /// Power-of-two bucket-edge classification: for any value, the
    /// chosen bucket's bound contains it and the previous bucket's
    /// bound does not — including exactly at the edges, where
    /// `v == 2^i` must land in bucket `i`, not `i + 1`.
    #[test]
    fn bucket_classification_is_tight(v in any::<u64>()) {
        let i = obs::bucket_index(v);
        prop_assert!(i < obs::NUM_BUCKETS);
        match obs::bucket_bound(i) {
            Some(bound) => prop_assert!(v <= bound, "{v} > bound {bound} of its bucket {i}"),
            None => {
                // Overflow bucket: v exceeds the last finite bound.
                let last = obs::bucket_bound(obs::NUM_BUCKETS - 2).expect("finite bound");
                prop_assert!(v > last, "{v} <= {last} but classified overflow");
            }
        }
        if i > 0 {
            let prev = obs::bucket_bound(i - 1).expect("finite bound");
            prop_assert!(v > prev, "{v} fits bucket {} too", i - 1);
        }
    }

    /// Exact edges: `2^k` goes in bucket k, `2^k + 1` in bucket k+1.
    #[test]
    fn bucket_edges_classify_exactly(k in 0u32..14) {
        let edge = 1u64 << k;
        prop_assert_eq!(obs::bucket_index(edge), k as usize);
        prop_assert_eq!(obs::bucket_index(edge + 1), k as usize + 1);
    }
}
