//! Live progress heartbeats and the Prometheus exporter: an audit
//! observed mid-flight from another thread reports monotone progress
//! through the phase sequence, the exporter's file sink ends on a
//! well-formed exposition describing the completed run, and a REJECT
//! carries the cost attribution of the work done up to the failure.

use apps::App;
use karousos::{
    audit_forensic, audit_with_obs, decode_advice, run_instrumented_server, AuditOptions,
    CollectorMode, Mutator,
};
use obs::{Obs, Phase};
use workload::{Experiment, Mix};

fn wiki_run(
    requests: usize,
) -> (
    kem::Program,
    kem::RunOutput,
    karousos::Advice,
    kvstore::IsolationLevel,
) {
    let mut exp = Experiment::paper_default(App::Wiki, Mix::Wiki, 8, 7);
    exp.requests = requests;
    let program = App::Wiki.program();
    let inputs = exp.inputs();
    let (out, advice) = run_instrumented_server(
        &program,
        &inputs,
        &exp.server_config(),
        CollectorMode::Karousos,
    )
    .expect("wiki app runs");
    (program, out, advice, exp.isolation)
}

#[test]
fn progress_is_monotone_and_reaches_done() {
    let (program, out, advice, iso) = wiki_run(200);
    let obs = Obs::enabled();
    let watcher_obs = obs.clone();
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let done_flag = done.clone();

    // Poll live snapshots from a second thread while the audit runs —
    // the heartbeat is atomics-only, so mid-flight reads are safe and
    // never block a worker.
    let watcher = std::thread::spawn(move || {
        let mut snaps = Vec::new();
        while !done_flag.load(std::sync::atomic::Ordering::Relaxed) {
            snaps.push(watcher_obs.progress_snapshot());
            std::thread::yield_now();
        }
        snaps.push(watcher_obs.progress_snapshot());
        snaps
    });

    audit_with_obs(
        &program,
        &out.trace,
        &advice,
        iso,
        AuditOptions::with_threads(2),
        &obs,
    )
    .expect("honest advice must be accepted");
    done.store(true, std::sync::atomic::Ordering::Relaxed);
    let snaps = watcher.join().expect("watcher thread joins");

    // Monotonicity: phase ordinal, groups_done, and fuel only move
    // forward; groups_done never exceeds groups_total once set.
    for w in snaps.windows(2) {
        assert!(
            w[1].phase as u8 >= w[0].phase as u8,
            "phase went backwards: {:?} -> {:?}",
            w[0].phase,
            w[1].phase
        );
        assert!(
            w[1].groups_done >= w[0].groups_done,
            "groups_done regressed"
        );
        assert!(w[1].fuel_spent >= w[0].fuel_spent, "fuel_spent regressed");
        if w[1].groups_total > 0 {
            assert!(w[1].groups_done <= w[1].groups_total);
        }
    }

    // Final heartbeat: the run completed.
    let last = snaps.last().expect("at least one snapshot");
    assert_eq!(last.phase, Phase::Done);
    assert!(last.groups_total > 0);
    assert_eq!(last.groups_done, last.groups_total);
    assert!(last.fuel_spent > 0);
    assert_eq!(last.failed_floor, None);
}

#[test]
fn prom_file_sink_ends_on_completed_exposition() {
    let (program, out, advice, iso) = wiki_run(60);
    let obs = Obs::enabled();
    let dir = std::env::temp_dir().join(format!("karousos-prom-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("prom.txt");
    let exporter = obs::PromExporter::start(
        obs.clone(),
        Some(path.clone()),
        None,
        std::time::Duration::from_millis(20),
    )
    .expect("exporter starts");
    audit_with_obs(
        &program,
        &out.trace,
        &advice,
        iso,
        AuditOptions::with_threads(2),
        &obs,
    )
    .expect("honest advice must be accepted");
    exporter.stop();

    let text = std::fs::read_to_string(&path).expect("exporter wrote the file");
    obs::check_exposition(&text).expect("file sink must be a well-formed exposition");
    // The final render happens on stop, after the audit: the file
    // describes the completed run.
    let progress = obs.progress_snapshot();
    assert_eq!(progress.phase, Phase::Done);
    let gauge = |name: &str| -> i64 {
        text.lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("gauge {name} missing from exposition:\n{text}"))
    };
    assert_eq!(gauge("karousos_progress_phase"), Phase::Done as u8 as i64);
    assert_eq!(
        gauge("karousos_progress_groups_done"),
        progress.groups_total as i64
    );
    assert_eq!(gauge("karousos_progress_failed_floor"), -1);
    assert!(text.contains("karousos_ledger_fuel"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A program whose handler logs have reorderable same-handler entries
/// (the `eventful` scenario of tests/reject_forensics.rs): reordering
/// them creates a cycle caught in the postprocess check, *after*
/// group replay.
fn eventful() -> (
    kem::Program,
    kem::RunOutput,
    karousos::Advice,
    kvstore::IsolationLevel,
) {
    use kem::dsl;
    use kem::Value;
    let mut b = kem::ProgramBuilder::new();
    b.shared_var("cfg", Value::int(1), true);
    b.function(
        "handle",
        vec![
            dsl::register("ping", "on_ping"),
            dsl::emit("ping", dsl::lit(1)),
            dsl::listener_count("n", "ping"),
            dsl::unregister("ping", "on_ping"),
            dsl::respond(dsl::sread("cfg")),
        ],
    );
    b.function("on_ping", vec![dsl::let_("z", dsl::payload())]);
    b.request_handler("handle");
    let program = b.build().expect("eventful program builds");
    let cfg = kem::ServerConfig::default();
    let inputs = vec![Value::Null; 4];
    let (out, advice) = run_instrumented_server(&program, &inputs, &cfg, CollectorMode::Karousos)
        .expect("eventful program runs");
    (program, out, advice, cfg.isolation)
}

#[test]
fn rejected_audit_attaches_cost_attribution() {
    let (program, out, advice, iso) = eventful();
    // Reordering a handler log creates a cycle: the failure lands in
    // the postprocess cycle check, *after* group replay, so the ledger
    // holds every replayed group and the REJECT can say where the fuel
    // went.
    let m = (0..200)
        .find_map(|seed| {
            let m = Mutator::ReorderHandlerLog.apply(&advice, seed)?;
            let a = decode_advice(&m.bytes).expect("mutated advice re-decodes");
            // Only keep a swap the cycle check (not an earlier replay
            // check) rejects, so replay completes first.
            match audit_with_obs(
                &program,
                &out.trace,
                &a,
                iso,
                AuditOptions::default(),
                &Obs::noop(),
            ) {
                Err(karousos::RejectReason::CycleInG) => Some(m),
                _ => None,
            }
        })
        .expect("some reorder seed must induce a cycle");
    let mutated = decode_advice(&m.bytes).expect("mutated advice re-decodes");
    let obs = Obs::enabled();
    let failure = audit_forensic(
        &program,
        &out.trace,
        &mutated,
        iso,
        AuditOptions::default(),
        &obs,
    )
    .expect_err("reordered handler log must be rejected");
    assert_eq!(obs.progress_snapshot().phase, Phase::Rejected);
    let attribution = failure
        .diagnostics
        .attribution
        .as_ref()
        .expect("post-replay REJECT must carry cost attribution");
    assert!(attribution.fuel_spent > 0);
    assert!(attribution.groups_recorded > 0);
    assert!(!attribution.top_groups.is_empty());
    // The top group is the most fuel-expensive recorded row.
    let ledger = obs.ledger_snapshot();
    let max_fuel = ledger.groups.iter().map(|g| g.fuel).max().unwrap_or(0);
    assert_eq!(attribution.top_groups[0].fuel, max_fuel);
    // And the serialized diagnostics carry the section.
    let json = failure.diagnostics.to_json();
    assert!(json.contains("\"attribution\""), "{json}");
    assert!(json.contains("\"top_groups\""), "{json}");
}
