//! Randomized Completeness: honest runs accept across randomly drawn
//! configurations (app, mix, seed, concurrency, isolation, mode).

use apps::App;
use karousos::{audit_encoded, encode_advice, run_instrumented_server, CollectorMode};
use kvstore::IsolationLevel;
use proptest::prelude::*;
use workload::{Experiment, Mix};

proptest! {
    // Each case runs a full server + audit; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn honest_runs_always_accept(
        app_pick in 0usize..3,
        mix_pick in 0usize..3,
        seed in 0u64..1_000,
        concurrency in 1usize..12,
        iso_pick in 0usize..3,
        orochi in any::<bool>(),
    ) {
        let app = App::ALL[app_pick];
        let mix = if app == App::Wiki { Mix::Wiki } else { Mix::RW_MIXES[mix_pick] };
        let isolation = IsolationLevel::ALL[iso_pick];
        let mode = if orochi { CollectorMode::OrochiJs } else { CollectorMode::Karousos };

        let mut exp = Experiment::paper_default(app, mix, concurrency, seed);
        exp.requests = 25;
        exp.isolation = isolation;
        let program = app.program();
        let (out, advice) = run_instrumented_server(
            &program,
            &exp.inputs(),
            &exp.server_config(),
            mode,
        ).expect("apps run cleanly");

        // Audit through the wire form, exercising codec + verifier.
        let bytes = encode_advice(&advice);
        let report = audit_encoded(&program, &out.trace, &bytes, isolation);
        prop_assert!(
            report.is_ok(),
            "rejected honest run: {} {} c={} seed={} iso={} {:?}: {}",
            app.name(), mix.name(), concurrency, seed, isolation, mode,
            report.unwrap_err()
        );
    }
}
