//! Lemma 1 in practice: the audit's verdict is independent of the
//! order in which the re-executor drains each group's active queue
//! (any well-formed schedule — one respecting activation order and
//! program order — is equivalent, Appendix C Lemma 1).
//!
//! Checked for honest advice (all schedules ACCEPT with identical
//! statistics) and for tampered advice (all schedules REJECT).

use apps::App;
use karousos::{audit_with_schedule, run_instrumented_server, CollectorMode, ReplaySchedule};
use proptest::prelude::*;
use workload::{Experiment, Mix};

const SCHEDULES: [ReplaySchedule; 4] = [
    ReplaySchedule::Fifo,
    ReplaySchedule::Lifo,
    ReplaySchedule::Random { seed: 17 },
    ReplaySchedule::Random { seed: 99 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn honest_audits_agree_across_schedules(
        app_pick in 0usize..3,
        seed in 0u64..500,
        concurrency in 1usize..8,
    ) {
        let app = App::ALL[app_pick];
        let mix = if app == App::Wiki { Mix::Wiki } else { Mix::Mixed };
        let mut exp = Experiment::paper_default(app, mix, concurrency, seed);
        exp.requests = 20;
        let program = app.program();
        let (out, advice) = run_instrumented_server(
            &program,
            &exp.inputs(),
            &exp.server_config(),
            CollectorMode::Karousos,
        ).unwrap();

        let mut verdicts = Vec::new();
        for schedule in SCHEDULES {
            let r = audit_with_schedule(&program, &out.trace, &advice, exp.isolation, schedule);
            match r {
                Ok(report) => verdicts.push((
                    true,
                    report.reexec.groups,
                    report.reexec.handlers_executed,
                    report.graph_nodes,
                    report.graph_edges,
                )),
                Err(e) => {
                    return Err(TestCaseError::fail(format!(
                        "{app:?} seed={seed} {schedule:?} rejected honest run: {e}"
                    )))
                }
            }
        }
        prop_assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "schedules disagreed: {verdicts:?}"
        );
    }

    #[test]
    fn tampered_audits_reject_under_every_schedule(
        seed in 0u64..500,
    ) {
        let mut exp = Experiment::paper_default(App::Stacks, Mix::Mixed, 4, seed);
        exp.requests = 20;
        let program = App::Stacks.program();
        let (mut out, advice) = run_instrumented_server(
            &program,
            &exp.inputs(),
            &exp.server_config(),
            CollectorMode::Karousos,
        ).unwrap();
        // Tamper with the last response.
        if let Some(kem::TraceEvent::Response { output, .. }) =
            out.trace.events_mut().last_mut()
        {
            *output = kem::Value::str("forged");
        }
        for schedule in SCHEDULES {
            prop_assert!(
                audit_with_schedule(&program, &out.trace, &advice, exp.isolation, schedule)
                    .is_err(),
                "schedule {schedule:?} accepted a forged trace"
            );
        }
    }
}
