//! Second adversarial wave: log-ordering forgeries, phantom
//! continuations, and the behaviours that are deliberately *tolerated*
//! (over-logging that constrains nothing).

use apps::App;
use karousos::{audit, run_instrumented_server, Advice, CollectorMode, RejectReason, TxOpType};
use kem::{HandlerId, Program, RequestId, Trace};
use kvstore::IsolationLevel;
use workload::{Experiment, Mix};

const SER: IsolationLevel = IsolationLevel::Serializable;

fn honest(app: App, mix: Mix, n: usize, concurrency: usize, seed: u64) -> (Program, Trace, Advice) {
    let mut exp = Experiment::paper_default(app, mix, concurrency, seed);
    exp.requests = n;
    let program = app.program();
    let (out, advice) = run_instrumented_server(
        &program,
        &exp.inputs(),
        &exp.server_config(),
        CollectorMode::Karousos,
    )
    .unwrap();
    (program, out.trace, advice)
}

#[test]
fn swapped_handler_log_entries_rejected() {
    // Swapping two same-handler entries inverts the handler-log
    // precedence edges against program order — a cycle in G — or
    // changes the registration set visible at the emit.
    use kem::dsl::*;
    let mut b = kem::ProgramBuilder::new();
    b.function(
        "handle",
        vec![
            register("ev", "listener"),
            emit("ev", lit(1i64)),
            respond(lit("ok")),
        ],
    );
    b.function("listener", vec![]);
    b.request_handler("handle");
    let p = b.build().unwrap();
    let (out, mut a) = run_instrumented_server(
        &p,
        &[kem::Value::Null],
        &kem::ServerConfig::default(),
        CollectorMode::Karousos,
    )
    .unwrap();
    audit(&p, &out.trace, &a, SER).expect("honest baseline accepts");
    let log = a.handler_logs.values_mut().next().expect("one request");
    assert!(log.len() >= 2 && log[0].hid == log[1].hid);
    log.swap(0, 1);
    let err = audit(&p, &out.trace, &a, SER).unwrap_err();
    assert!(
        matches!(
            err,
            RejectReason::CycleInG
                | RejectReason::HandlerOpMismatch { .. }
                | RejectReason::MissingActivatedHandler { .. }
                | RejectReason::EmitActivationMismatch { .. }
                | RejectReason::HandlerNotExecuted { .. }
        ),
        "{err}"
    );
}

#[test]
fn swapped_tx_log_entries_rejected() {
    // Swapping a transaction's GET and PUT breaks the txnum ↔ position
    // correspondence CheckStateOp enforces.
    let (p, t, mut a) = honest(App::Stacks, Mix::WriteHeavy, 20, 1, 2);
    let log = a
        .tx_logs
        .values_mut()
        .find(|l| l.len() >= 3)
        .expect("report transactions have ≥3 ops");
    log.swap(1, 2);
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(
            err,
            RejectReason::StateOpMismatch { .. }
                | RejectReason::TxLogMalformed { .. }
                | RejectReason::SelfReadNotLastModification { .. }
                | RejectReason::InvalidLogOp { .. }
        ),
        "{err}"
    );
}

#[test]
fn dropped_tx_log_entry_rejected() {
    let (p, t, mut a) = honest(App::Stacks, Mix::WriteHeavy, 20, 1, 3);
    let log = a
        .tx_logs
        .values_mut()
        .find(|l| l.len() >= 3)
        .expect("report transactions have ≥3 ops");
    log.remove(1);
    assert!(audit(&p, &t, &a, SER).is_err());
}

#[test]
fn redirected_dictating_write_rejected() {
    // Point a GET at a *different* PUT of the same key (an earlier
    // version): values differ ⇒ simulate-and-check or output mismatch;
    // equal values would still flunk the write-order cross-checks.
    let (p, t, mut a) = honest(App::Stacks, Mix::WriteHeavy, 40, 1, 4);
    // Find a key with ≥ 2 committed writes and a GET reading the later.
    let mut writes: std::collections::HashMap<String, Vec<karousos::TxPos>> = Default::default();
    for pos in &a.write_order {
        let key = a.tx_entry(pos).unwrap().key.clone().unwrap();
        writes.entry(key).or_default().push(pos.clone());
    }
    let (key, versions) = writes
        .into_iter()
        .find(|(_, v)| v.len() >= 2)
        .expect("some dump reported twice");
    let earlier = versions[0].clone();
    let later = versions[1].clone();
    let mut redirected = false;
    for log in a.tx_logs.values_mut() {
        for e in log.iter_mut() {
            if e.optype == TxOpType::Get && e.key.as_deref() == Some(key.as_str()) {
                if let karousos::TxOpContents::Get { from: Some(pos) } = &mut e.contents {
                    if *pos == later {
                        *pos = earlier.clone();
                        redirected = true;
                        break;
                    }
                }
            }
        }
        if redirected {
            break;
        }
    }
    if !redirected {
        // No GET observed the later version in this schedule; the
        // scenario is vacuous — skip rather than assert.
        return;
    }
    assert!(audit(&p, &t, &a, SER).is_err());
}

#[test]
fn phantom_db_continuation_rejected() {
    // Report a continuation handler hanging off a real transactional
    // op that never activated it.
    let (p, t, mut a) = honest(App::Stacks, Mix::Mixed, 20, 1, 5);
    // Find a tx op coordinate and attach a phantom child there.
    let (tx, entry) = a
        .tx_logs
        .iter()
        .find_map(|(tx, log)| log.first().map(|e| (tx.clone(), e.clone())))
        .expect("transactions exist");
    let phantom = HandlerId::child(&entry.hid, kem::FunctionId(2), entry.opnum);
    a.opcounts.insert((tx.rid, phantom), 0);
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(
            err,
            RejectReason::HandlerNotExecuted { .. } | RejectReason::BadActivationParent { .. }
        ),
        "{err}"
    );
}

#[test]
fn stolen_tag_causes_divergence() {
    // Give one request the tag of a different control-flow class.
    let (p, t, mut a) = honest(App::Motd, Mix::Mixed, 20, 1, 6);
    let mut by_tag: std::collections::BTreeMap<u64, Vec<RequestId>> = Default::default();
    for (rid, tag) in &a.tags {
        by_tag.entry(*tag).or_default().push(*rid);
    }
    assert!(by_tag.len() >= 2, "mixed workload has several groups");
    let mut tags = by_tag.keys();
    let (t1, t2) = (*tags.next().unwrap(), *tags.next().unwrap());
    let victim = by_tag[&t2][0];
    a.tags.insert(victim, t1);
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(
            err,
            RejectReason::Divergence { .. }
                | RejectReason::OpcountMismatch { .. }
                | RejectReason::GroupSetupMismatch { .. }
                | RejectReason::ResponseEmitterMismatch { .. }
        ),
        "{err}"
    );
}

#[test]
fn off_by_one_response_emitter_rejected() {
    let (p, t, mut a) = honest(App::Motd, Mix::Mixed, 10, 1, 7);
    let rid = *a.response_emitted_by.keys().next().unwrap();
    let (hid, opnum) = a.response_emitted_by.get(&rid).unwrap().clone();
    let shifted = opnum.saturating_sub(1);
    a.response_emitted_by.insert(rid, (hid, shifted));
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(err, RejectReason::ResponseEmitterMismatch { .. }),
        "{err}"
    );
}

#[test]
fn unused_extra_nondet_entries_are_tolerated() {
    // Over-logging that constrains nothing is not misbehaviour: an
    // extra recorded nondeterministic value at a coordinate re-execution
    // never consults cannot change the audit's meaning.
    let (p, t, mut a) = honest(App::Motd, Mix::Mixed, 10, 1, 8);
    let ((rid, hid), _) = a
        .opcounts
        .iter()
        .next()
        .map(|(k, c)| (k.clone(), *c))
        .unwrap();
    a.nondet.insert(
        kem::OpRef::new(rid, HandlerId::child(&hid, kem::FunctionId(0), 1), 1),
        kem::Value::int(42),
    );
    // Still rejected — but only because the phantom coordinate's
    // handler is unknown? No: nondet entries are not validated against
    // opcounts (they are consulted by coordinate). The audit accepts.
    audit(&p, &t, &a, SER).expect("unconsulted nondet entries are harmless");
}

#[test]
fn var_log_read_turned_into_write_rejected() {
    let (p, t, mut a) = honest(App::Motd, Mix::Mixed, 20, 4, 9);
    let entry = a
        .var_logs
        .values_mut()
        .flat_map(|l| l.values_mut())
        .find(|e| e.access == karousos::AccessType::Read)
        .expect("mixed MOTD logs reads");
    entry.access = karousos::AccessType::Write;
    entry.value = Some(kem::Value::int(7));
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(
            err,
            RejectReason::VarLogMismatch { .. } | RejectReason::VarChainBroken { .. }
        ),
        "{err}"
    );
}

#[test]
fn write_order_with_foreign_entry_rejected() {
    // Append a duplicate of an existing entry: length/uniqueness checks.
    let (p, t, mut a) = honest(App::Stacks, Mix::WriteHeavy, 20, 1, 10);
    let dup = a.write_order[0].clone();
    a.write_order.push(dup);
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(err, RejectReason::WriteOrderMismatch { .. }),
        "{err}"
    );
}

#[test]
fn implausible_nondet_rejected() {
    // Replace a recorded timestamp with a non-integer: the §5
    // well-formedness checks fire before the value reaches re-execution.
    let (p, t, mut a) = honest(App::Wiki, Mix::Wiki, 10, 1, 11);
    let key = a.nondet.keys().next().unwrap().clone();
    a.nondet.insert(key, kem::Value::str("not a timestamp"));
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(err, RejectReason::ImplausibleNondet { .. }),
        "{err}"
    );
}

#[test]
fn out_of_range_random_rejected() {
    use kem::dsl::*;
    let mut b = kem::ProgramBuilder::new();
    b.function("handle", vec![nondet_random("r", 10), respond(local("r"))]);
    b.request_handler("handle");
    let p = b.build().unwrap();
    let (out, mut a) = run_instrumented_server(
        &p,
        &[kem::Value::Null],
        &kem::ServerConfig::default(),
        CollectorMode::Karousos,
    )
    .unwrap();
    let key = a.nondet.keys().next().unwrap().clone();
    a.nondet.insert(key, kem::Value::int(10_000)); // bound is 10
                                                   // The trace must be tampered consistently or the output check also
                                                   // fires; either way, rejection.
    let err = audit(&p, &out.trace, &a, SER).unwrap_err();
    assert!(
        matches!(
            err,
            RejectReason::ImplausibleNondet { .. } | RejectReason::OutputMismatch { .. }
        ),
        "{err}"
    );
}

#[test]
fn forged_initialization_value_rejected() {
    // The initialization activation `I` is trusted and never
    // re-executed, so its writes are never simulate-and-checked. A
    // malicious server logs a *fake* backfilled init-write entry with a
    // poisoned value and points a read at it; the forged value then
    // flows into responses. The verifier must cross-check logged values
    // at executed-write coordinates against the dictionary.
    use kem::dsl::*;
    let mut b = kem::ProgramBuilder::new();
    b.shared_var("banner", kem::Value::str("welcome"), true);
    b.function("handle", vec![respond(sread("banner"))]);
    b.request_handler("handle");
    let p = b.build().unwrap();
    let (mut out, mut a) = run_instrumented_server(
        &p,
        &[kem::Value::Null],
        &kem::ServerConfig::default(),
        CollectorMode::Karousos,
    )
    .unwrap();
    // Honest: the single read is R-ordered after init, nothing logged.
    assert_eq!(a.var_log_entries(), 0);
    audit(&p, &out.trace, &a, SER).expect("honest baseline accepts");

    // The attack: log a fake init write with a poisoned value, point
    // the read at it, and tamper the response to match.
    let init_op = kem::OpRef::new(kem::RequestId::INIT, kem::init_handler_id(), 1);
    let hid = HandlerId::root(p.function_id("handle").unwrap());
    let read_op = kem::OpRef::new(RequestId(0), hid, 1);
    let mut log = karousos::VarLog::new();
    log.insert(
        init_op.clone(),
        karousos::VarLogEntry {
            access: karousos::AccessType::Write,
            value: Some(kem::Value::str("HACKED")),
            prec: None,
        },
    );
    log.insert(
        read_op,
        karousos::VarLogEntry {
            access: karousos::AccessType::Read,
            value: None,
            prec: Some(init_op),
        },
    );
    a.var_logs.insert(p.var_id("banner").unwrap(), log);
    if let Some(kem::TraceEvent::Response { output, .. }) = out.trace.events_mut().last_mut() {
        *output = kem::Value::str("HACKED");
    }
    let err = audit(&p, &out.trace, &a, SER)
        .expect_err("a forged initialization value must not be accepted");
    assert!(
        matches!(
            err,
            RejectReason::VarLogMismatch { .. } | RejectReason::VarChainBroken { .. }
        ),
        "{err}"
    );
}

#[test]
fn fabricated_transaction_squatting_on_var_coordinates_rejected() {
    // §4.4's first cross-check: "the verifier ensures that all
    // operations in the transaction logs are produced during
    // re-execution". A malicious server fabricates a whole transaction
    // whose entries sit at coordinates that re-execution occupies with
    // *variable accesses* (which never consult the OpMap): the fake
    // transaction then justifies arbitrary GET values elsewhere unless
    // the verifier demands every logged operation be consumed.
    use kem::dsl::*;
    let mut b = kem::ProgramBuilder::new();
    b.shared_var("x", kem::Value::Int(0), true);
    // Two loggable ops (coordinates 1 and 2) that are NOT state ops.
    b.function(
        "handle",
        vec![swrite("x", add(sread("x"), lit(1i64))), respond(lit("ok"))],
    );
    b.request_handler("handle");
    let p = b.build().unwrap();
    let (out, mut a) = run_instrumented_server(
        &p,
        &[kem::Value::Null],
        &kem::ServerConfig::default(),
        CollectorMode::Karousos,
    )
    .unwrap();
    audit(&p, &out.trace, &a, SER).expect("honest baseline accepts");

    // Fabricate a committed transaction occupying coordinates 1–2 of
    // the (real) request handler.
    let hid = HandlerId::root(p.function_id("handle").unwrap());
    let tx = karousos::KTxId {
        rid: RequestId(0),
        hid: hid.clone(),
        opnum: 1,
    };
    a.tx_logs.insert(
        tx.clone(),
        vec![
            karousos::TxLogEntry {
                hid: hid.clone(),
                opnum: 1,
                optype: TxOpType::Start,
                key: None,
                contents: karousos::TxOpContents::None,
            },
            karousos::TxLogEntry {
                hid: hid.clone(),
                opnum: 2,
                optype: TxOpType::Commit,
                key: None,
                contents: karousos::TxOpContents::None,
            },
        ],
    );
    let err = audit(&p, &out.trace, &a, SER)
        .expect_err("a transaction never produced by re-execution must be rejected");
    assert!(
        matches!(err, RejectReason::UnexecutedLogEntry { .. }),
        "{err}"
    );
}
