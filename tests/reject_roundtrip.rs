//! Exhaustive round-trip pinning of the [`RejectReason`] catalogue:
//! every variant's `kind()` string and Display form is part of the
//! audit's external contract (forensics exports, CI triage, the paper
//! artifact's result tables), so changes must be deliberate. The
//! `reasons()` fixture below is checked against the variant count —
//! adding a variant without extending this test fails to compile the
//! intent, not just the string.

use karousos::{AuditDiagnostics, KTxId, RejectReason, ResourceKind};
use kem::{FunctionId, HandlerId, OpRef, RequestId};

fn op() -> OpRef {
    OpRef::new(RequestId(7), HandlerId::root(FunctionId(2)), 3)
}

/// One instance of every `RejectReason` variant, in declaration order,
/// paired with its pinned `kind()` name and a pinned Display fragment.
fn reasons() -> Vec<(RejectReason, &'static str, &'static str)> {
    vec![
        (
            RejectReason::UnbalancedTrace,
            "UnbalancedTrace",
            "trace is not balanced",
        ),
        (
            RejectReason::UnknownRequest { rid: RequestId(7) },
            "UnknownRequest",
            "unknown request",
        ),
        (
            RejectReason::BadResponseEmitter {
                rid: RequestId(7),
                why: "absent",
            },
            "BadResponseEmitter",
            "bad responseEmittedBy",
        ),
        (
            RejectReason::InvalidLogOp {
                at: op(),
                why: "opnum out of range",
            },
            "InvalidLogOp",
            "invalid log op",
        ),
        (
            RejectReason::MissingActivatedHandler { rid: RequestId(7) },
            "MissingActivatedHandler",
            "activated handler missing",
        ),
        (
            RejectReason::BadActivationParent { rid: RequestId(7) },
            "BadActivationParent",
            "missing/invalid activator",
        ),
        (
            RejectReason::TxLogMalformed {
                tx: KTxId {
                    rid: RequestId(7),
                    hid: HandlerId::root(FunctionId(2)),
                    opnum: 1,
                },
                why: "entry after commit",
            },
            "TxLogMalformed",
            "malformed transaction log",
        ),
        (
            RejectReason::BadDictatingWrite { at: op() },
            "BadDictatingWrite",
            "bad dictating write",
        ),
        (
            RejectReason::SelfReadNotLastModification { at: op() },
            "SelfReadNotLastModification",
            "not last modification",
        ),
        (
            RejectReason::WriteOrderMismatch { why: "hole" },
            "WriteOrderMismatch",
            "write order mismatch",
        ),
        (
            RejectReason::Isolation(adya::Violation::G0 {
                witness: adya::TxnId(4),
            }),
            "Isolation",
            "isolation violation",
        ),
        (
            RejectReason::GroupSetupMismatch { why: "tag clash" },
            "GroupSetupMismatch",
            "group setup mismatch",
        ),
        (
            RejectReason::Divergence {
                context: "branch arm".to_string(),
            },
            "Divergence",
            "group divergence",
        ),
        (
            RejectReason::StateOpMismatch {
                at: op(),
                why: "key differs",
            },
            "StateOpMismatch",
            "state op mismatch",
        ),
        (
            RejectReason::HandlerOpMismatch {
                at: op(),
                why: "type differs",
            },
            "HandlerOpMismatch",
            "handler op mismatch",
        ),
        (
            RejectReason::EmitActivationMismatch { at: op() },
            "EmitActivationMismatch",
            "emit activation mismatch",
        ),
        (
            RejectReason::OpcountMismatch { rid: RequestId(7) },
            "OpcountMismatch",
            "opcount mismatch",
        ),
        (
            RejectReason::ResponseEmitterMismatch { rid: RequestId(7) },
            "ResponseEmitterMismatch",
            "response emitter mismatch",
        ),
        (
            RejectReason::OutputMismatch { rid: RequestId(7) },
            "OutputMismatch",
            "output mismatch",
        ),
        (
            RejectReason::HandlerNotExecuted { rid: RequestId(7) },
            "HandlerNotExecuted",
            "never executed",
        ),
        (
            RejectReason::MissingNondet { at: op() },
            "MissingNondet",
            "missing nondet",
        ),
        (
            RejectReason::MissingTag { rid: RequestId(7) },
            "MissingTag",
            "missing control-flow tag",
        ),
        (
            RejectReason::VarLogMismatch {
                at: op(),
                why: "value differs",
            },
            "VarLogMismatch",
            "variable log mismatch",
        ),
        (
            RejectReason::VarChainBroken { why: "fork" },
            "VarChainBroken",
            "variable chain broken",
        ),
        (
            RejectReason::CycleInG,
            "CycleInG",
            "execution graph has a cycle",
        ),
        (
            RejectReason::ReexecError {
                message: "type error".to_string(),
            },
            "ReexecError",
            "re-execution error",
        ),
        (
            RejectReason::MalformedAdvice {
                what: "truncated".to_string(),
            },
            "MalformedAdvice",
            "malformed advice",
        ),
        (
            RejectReason::MalformedAdviceAt {
                at: op(),
                what: "index escapes log",
            },
            "MalformedAdviceAt",
            "malformed advice at",
        ),
        (
            RejectReason::VerifierInternal {
                what: "caught panic".to_string(),
            },
            "VerifierInternal",
            "verifier internal error",
        ),
        (
            RejectReason::ImplausibleNondet { at: op() },
            "ImplausibleNondet",
            "implausible nondet",
        ),
        (
            RejectReason::UnexecutedLogEntry { at: op() },
            "UnexecutedLogEntry",
            "never produced by re-execution",
        ),
        (
            RejectReason::ResourceExhausted {
                resource: ResourceKind::ReplayFuel,
                group: Some(3),
                spent: 1001,
                limit: 1000,
            },
            "ResourceExhausted",
            "resource budget exhausted: replay_fuel (group g3), spent 1001 of limit 1000",
        ),
    ]
}

#[test]
fn every_variant_has_a_stable_kind_and_display() {
    let all = reasons();
    // Coverage floor: grep-derived variant count. If RejectReason grows,
    // this number and `reasons()` must both grow with it.
    assert_eq!(all.len(), 32, "RejectReason variant added without a pin");
    let mut kinds = std::collections::BTreeSet::new();
    for (reason, kind, display_fragment) in &all {
        assert_eq!(reason.kind(), *kind);
        let shown = reason.to_string();
        assert!(
            shown.contains(display_fragment),
            "{kind}: Display {shown:?} lost pinned fragment {display_fragment:?}"
        );
        assert!(kinds.insert(*kind), "duplicate kind string {kind}");
    }
}

#[test]
fn quarantine_split_is_exactly_the_resource_and_internal_variants() {
    for (reason, kind, _) in reasons() {
        let expected = matches!(kind, "ResourceExhausted" | "VerifierInternal");
        assert_eq!(
            reason.quarantines(),
            expected,
            "{kind}: quarantines() drifted from the documented split"
        );
    }
}

#[test]
fn every_variant_exports_to_forensics_json() {
    for (reason, kind, _) in reasons() {
        let diag = AuditDiagnostics::from_reason("reexec", &reason);
        let json = diag.to_json();
        assert!(
            json.contains(&format!("\"kind\": \"{kind}\"")),
            "{kind}: kind missing from forensics JSON {json}"
        );
        assert!(json.contains("\"phase\": \"reexec\""), "{kind}: {json}");
        // The Display form rides along as the human-readable reason and
        // must be JSON-escaped into a parseable document.
        json::validate(&json).unwrap_or_else(|e| panic!("{kind}: invalid JSON {json}: {e}"));
    }
}

#[test]
fn resource_kind_names_are_pinned() {
    let expected = [
        ("replay_fuel", ResourceKind::ReplayFuel),
        ("group_deadline_ms", ResourceKind::GroupDeadline),
        ("decode_bytes", ResourceKind::DecodeBytes),
        ("decode_nodes", ResourceKind::DecodeNodes),
        ("dict_entries", ResourceKind::DictEntries),
        ("graph_nodes", ResourceKind::GraphNodes),
        ("graph_edges", ResourceKind::GraphEdges),
        ("group_width", ResourceKind::GroupWidth),
    ];
    assert_eq!(expected.len(), ResourceKind::ALL.len());
    for ((name, kind), listed) in expected.iter().zip(ResourceKind::ALL) {
        assert_eq!(*kind, listed, "ALL order drifted");
        assert_eq!(kind.name(), *name);
        assert_eq!(kind.to_string(), *name);
    }
}

/// Minimal JSON well-formedness validator (no serde in the workspace).
mod json {
    pub fn validate(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        skip_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn skip_value(b: &[u8], i: &mut usize) -> Result<(), String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => skip_delimited(b, i, b'}', true),
            Some(b'[') => skip_delimited(b, i, b']', false),
            Some(b'"') => skip_string(b, i),
            Some(_) => skip_scalar(b, i),
            None => Err("unexpected end".to_string()),
        }
    }

    fn skip_delimited(b: &[u8], i: &mut usize, close: u8, object: bool) -> Result<(), String> {
        *i += 1;
        skip_ws(b, i);
        if b.get(*i) == Some(&close) {
            *i += 1;
            return Ok(());
        }
        loop {
            if object {
                skip_ws(b, i);
                skip_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at {i}"));
                }
                *i += 1;
            }
            skip_value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(c) if *c == close => {
                    *i += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or close at {i}, got {other:?}")),
            }
        }
    }

    fn skip_string(b: &[u8], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected string at {i}"));
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => *i += 2,
                0x00..=0x1f => return Err(format!("raw control byte 0x{c:02x} at {i}")),
                _ => *i += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn skip_scalar(b: &[u8], i: &mut usize) -> Result<(), String> {
        let start = *i;
        while *i < b.len() && !b",]}\t\r\n ".contains(&b[*i]) {
            *i += 1;
        }
        let tok = &b[start..*i];
        if tok == b"null" || tok == b"true" || tok == b"false" {
            return Ok(());
        }
        let s = std::str::from_utf8(tok).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(|_| ())
            .map_err(|_| format!("bad scalar {s:?} at {start}"))
    }
}
