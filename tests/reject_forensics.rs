//! REJECT forensics: a seeded fault-injection mutation that induces a
//! cycle in the execution graph must produce an [`AuditDiagnostics`]
//! whose minimal cycle names the mutated operations, with every edge
//! carrying its kind and a rendered provenance line.

use apps::App;
use karousos::{
    audit_forensic, audit_with_options, decode_advice, run_instrumented_server, AuditOptions,
    CollectorMode, EdgeKind, Mutator, RejectReason,
};
use obs::Obs;
use workload::{Experiment, Mix};

fn honest() -> (
    kem::Program,
    kem::RunOutput,
    karousos::Advice,
    kvstore::IsolationLevel,
) {
    let mut exp = Experiment::paper_default(App::Wiki, Mix::Wiki, 6, 11);
    exp.requests = 40;
    let program = App::Wiki.program();
    let inputs = exp.inputs();
    let (out, advice) = run_instrumented_server(
        &program,
        &inputs,
        &exp.server_config(),
        CollectorMode::Karousos,
    )
    .expect("wiki app runs");
    (program, out, advice, exp.isolation)
}

/// A handler with several event operations (register / emit / check /
/// unregister), so its handler log has adjacent same-handler entries —
/// the coordinates [`Mutator::ReorderHandlerLog`] targets. The
/// evaluation apps route their event ops through distinct handlers, so
/// their logs give the mutator nothing to swap.
fn eventful() -> (
    kem::Program,
    kem::RunOutput,
    karousos::Advice,
    kvstore::IsolationLevel,
) {
    use kem::dsl;
    use kem::Value;
    let mut b = kem::ProgramBuilder::new();
    b.shared_var("cfg", Value::int(1), true);
    b.function(
        "handle",
        vec![
            dsl::register("ping", "on_ping"),
            dsl::emit("ping", dsl::lit(1)),
            dsl::listener_count("n", "ping"),
            dsl::unregister("ping", "on_ping"),
            dsl::respond(dsl::sread("cfg")),
        ],
    );
    b.function("on_ping", vec![dsl::let_("z", dsl::payload())]);
    b.request_handler("handle");
    let program = b.build().expect("eventful program builds");
    let cfg = kem::ServerConfig::default();
    let inputs = vec![Value::Null; 4];
    let (out, advice) = run_instrumented_server(&program, &inputs, &cfg, CollectorMode::Karousos)
        .expect("eventful program runs");
    (program, out, advice, cfg.isolation)
}

/// The two handler-log entries the reorder mutation swapped, found by
/// diffing the mutated logs against the honest ones.
fn swapped_entries(
    honest: &karousos::Advice,
    mutated: &karousos::Advice,
) -> (
    kem::RequestId,
    karousos::HandlerLogEntry,
    karousos::HandlerLogEntry,
) {
    for (rid, log) in &mutated.handler_logs {
        let base = &honest.handler_logs[rid];
        if let Some(i) = (0..log.len()).find(|&i| log[i] != base[i]) {
            assert_eq!(log[i], base[i + 1], "mutation must be an adjacent swap");
            assert_eq!(log[i + 1], base[i]);
            return (*rid, log[i].clone(), log[i + 1].clone());
        }
    }
    panic!("mutated advice does not differ from honest advice");
}

#[test]
fn cycle_forensics_name_the_mutated_operations() {
    let (program, out, advice, iso) = eventful();
    // Deterministic scan: the first seed whose reorder yields CycleInG.
    // (Other seeds may pick swaps that a different check rejects first,
    // or no eligible swap at all.)
    let (seed, mutation) = (0..200u64)
        .find_map(|seed| {
            let m = Mutator::ReorderHandlerLog.apply(&advice, seed)?;
            let a = decode_advice(&m.bytes).expect("mutated advice re-decodes");
            match audit_with_options(&program, &out.trace, &a, iso, AuditOptions::default()) {
                Err(RejectReason::CycleInG) => Some((seed, m)),
                _ => None,
            }
        })
        .expect("some reorder seed must induce a cycle");
    let mutated = decode_advice(&mutation.bytes).expect("mutated advice re-decodes");

    let failure = audit_forensic(
        &program,
        &out.trace,
        &mutated,
        iso,
        AuditOptions::default(),
        &Obs::noop(),
    )
    .expect_err("the cyclic advice must be rejected");

    // The forensic entry point agrees with the plain one.
    assert_eq!(failure.reason, RejectReason::CycleInG);
    let d = &failure.diagnostics;
    assert_eq!(d.kind, "CycleInG");
    assert_eq!(d.phase, "postprocess");

    let cycle = d
        .cycle
        .as_ref()
        .expect("CycleInG must carry a cycle report");
    assert!(cycle.nodes.len() >= 2, "a cycle has at least two nodes");
    assert_eq!(cycle.edges.len(), cycle.nodes.len(), "one edge per hop");
    for e in &cycle.edges {
        assert!(
            !e.provenance.is_empty(),
            "edge {:?} lacks provenance",
            e.kind
        );
        assert!(
            e.provenance.contains(&e.from) || e.provenance.contains(&e.to),
            "provenance must name the inducing operations: {:?}",
            e.provenance
        );
    }
    assert!(
        cycle.edges.iter().any(|e| e.kind == EdgeKind::HandlerLog),
        "the reordered handler log must appear as a log-precedence edge"
    );

    // The report names the swapped operations (seed {seed} for
    // reproducibility in failure output).
    let (rid, e1, e2) = swapped_entries(&advice, &mutated);
    for entry in [&e1, &e2] {
        let label = format!("{rid} {} op{}", entry.hid, entry.opnum);
        assert!(
            cycle.nodes.contains(&label),
            "seed {seed}: minimal cycle {:?} must pass through mutated op {label:?} \
             ({})",
            cycle.nodes,
            mutation.description
        );
    }

    // The serialized form round-trips the same structure.
    let json = d.to_json();
    assert!(json.contains("\"kind\": \"CycleInG\""));
    assert!(json.contains("\"cycle\": {"));
    assert!(json.contains("handler-log"));

    // Determinism: the same mutation yields the same minimal cycle.
    let again = audit_forensic(
        &program,
        &out.trace,
        &mutated,
        iso,
        AuditOptions::default(),
        &Obs::noop(),
    )
    .expect_err("still rejected");
    assert_eq!(again.diagnostics, failure.diagnostics);
}

#[test]
fn non_cycle_rejections_carry_diagnostics_without_a_cycle() {
    let (program, out, advice, iso) = honest();
    let m = Mutator::CorruptOpcount
        .apply(&advice, 1)
        .expect("wiki advice has opcounts to corrupt");
    let mutated = decode_advice(&m.bytes).expect("mutated advice re-decodes");
    let failure = audit_forensic(
        &program,
        &out.trace,
        &mutated,
        iso,
        AuditOptions::default(),
        &Obs::noop(),
    )
    .expect_err("corrupted opcounts must be rejected");
    assert!(failure.diagnostics.cycle.is_none());
    assert_eq!(failure.diagnostics.kind, failure.reason.kind());
    assert!(failure.to_string().contains("audit rejected"));
}
