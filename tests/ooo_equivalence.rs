//! Lemma 3 in practice: batched `Audit` and ungrouped `OOOAudit`
//! (Fig. 22) agree — on honest runs (both ACCEPT) and on forgeries
//! (both REJECT) — across apps, schedules, and seeds.

use apps::App;
use karousos::{audit, ooo_audit, run_instrumented_server, CollectorMode, ReplaySchedule};
use kvstore::IsolationLevel;
use workload::{Experiment, Mix};

const SER: IsolationLevel = IsolationLevel::Serializable;

fn honest(
    app: App,
    mix: Mix,
    n: usize,
    concurrency: usize,
    seed: u64,
) -> (kem::Program, kem::Trace, karousos::Advice) {
    let mut exp = Experiment::paper_default(app, mix, concurrency, seed);
    exp.requests = n;
    let program = app.program();
    let (out, advice) = run_instrumented_server(
        &program,
        &exp.inputs(),
        &exp.server_config(),
        CollectorMode::Karousos,
    )
    .unwrap();
    (program, out.trace, advice)
}

#[test]
fn ooo_audit_accepts_honest_runs() {
    for app in App::ALL {
        let mix = if app == App::Wiki {
            Mix::Wiki
        } else {
            Mix::Mixed
        };
        for seed in 0..4u64 {
            let (p, t, a) = honest(app, mix, 25, 4, seed);
            for schedule in [
                ReplaySchedule::Fifo,
                ReplaySchedule::Lifo,
                ReplaySchedule::Random { seed: 31 },
            ] {
                ooo_audit(&p, &t, &a, SER, schedule).unwrap_or_else(|e| {
                    panic!(
                        "OOOAudit rejected honest {} run (seed {seed}, {schedule:?}): {e}",
                        app.name()
                    )
                });
            }
        }
    }
}

#[test]
fn ooo_audit_agrees_with_batched_audit() {
    // Lemma 3: the batched audit is equivalent to OOOAudit on a
    // specific well-formed schedule; combined with Lemma 1 (all
    // well-formed schedules are equivalent), the two must produce the
    // same verdict *and* the same derived state — here compared via the
    // execution graph's node/edge counts.
    for app in App::ALL {
        let mix = if app == App::Wiki {
            Mix::Wiki
        } else {
            Mix::ReadHeavy
        };
        let (p, t, a) = honest(app, mix, 25, 4, 7);
        let batched = audit(&p, &t, &a, SER).unwrap();
        let ooo = ooo_audit(&p, &t, &a, SER, ReplaySchedule::Fifo).unwrap();
        assert_eq!(batched.graph_nodes, ooo.graph_nodes, "{}", app.name());
        assert_eq!(batched.graph_edges, ooo.graph_edges, "{}", app.name());
        assert_eq!(
            batched.reexec.activations_covered,
            ooo.reexec.activations_covered,
            "{}",
            app.name()
        );
        // Batching's whole point: strictly fewer handler interpretations
        // whenever any group has more than one member.
        assert!(
            batched.reexec.handlers_executed <= ooo.reexec.handlers_executed,
            "{}",
            app.name()
        );
    }
}

#[test]
fn ooo_audit_rejects_forgeries() {
    let (p, mut t, a) = honest(App::Stacks, Mix::Mixed, 20, 4, 3);
    if let Some(kem::TraceEvent::Response { output, .. }) = t.events_mut().last_mut() {
        *output = kem::Value::str("forged");
    }
    for schedule in [ReplaySchedule::Fifo, ReplaySchedule::Random { seed: 5 }] {
        assert!(ooo_audit(&p, &t, &a, SER, schedule).is_err());
    }
}

#[test]
fn ooo_audit_ignores_tags_entirely() {
    // A server that refuses to tag (no grouping advice at all) still
    // gets audited by OOOAudit — grouping is an efficiency mechanism,
    // not a soundness one.
    let (p, t, mut a) = honest(App::Motd, Mix::Mixed, 15, 2, 9);
    a.tags.clear();
    assert!(audit(&p, &t, &a, SER).is_err(), "batched audit needs tags");
    ooo_audit(&p, &t, &a, SER, ReplaySchedule::Fifo).expect("OOOAudit succeeds without tags");
}
