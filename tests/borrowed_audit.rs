//! Differential equivalence of the borrowed audit path.
//!
//! The deployed verifier now audits straight from the wire view — an
//! [`karousos::AdviceRef`] borrowing the advice bytes — and never
//! materializes an owned `Advice` on the accept path. The owned decoder
//! (`decode_advice_fast`) stays alive purely as the oracle these tests
//! compare against: for every point of the threads × pipeline ×
//! bytecode matrix, on honest advice and across the hostile wire
//! mutation corpus, the two paths must produce byte-identical verdicts,
//! statistics, and fuel bills.

use apps::App;
use karousos::verifier::{AuditOptions, RejectReason};
use karousos::{
    audit_encoded_with_options, audit_with_options, decode_advice_fast, encode_advice, AuditReport,
    WireMutator,
};
use kem::{Program, Trace};
use kvstore::IsolationLevel;
use workload::{Experiment, Mix};

/// The full knob matrix the equivalence must hold over.
fn matrix() -> Vec<AuditOptions> {
    let mut out = Vec::new();
    for threads in [1usize, 4] {
        for pipeline in [false, true] {
            for bytecode in [false, true] {
                out.push(AuditOptions {
                    threads,
                    pipeline,
                    bytecode,
                    ..Default::default()
                });
            }
        }
    }
    out
}

/// The comparable slice of a verdict: everything except wall-clock.
#[derive(Debug, PartialEq)]
enum Outcome {
    Accept {
        reexec: karousos::ReexecStats,
        graph_nodes: usize,
        graph_edges: usize,
    },
    Reject(RejectReason),
}

impl Outcome {
    fn of(r: Result<AuditReport, RejectReason>) -> Outcome {
        match r {
            Ok(rep) => Outcome::Accept {
                reexec: rep.reexec,
                graph_nodes: rep.graph_nodes,
                graph_edges: rep.graph_edges,
            },
            Err(reason) => Outcome::Reject(reason),
        }
    }
}

/// Runs the owned oracle: decode to owned `Advice` exactly as the old
/// accept path did, then audit it. Decode failures map to the same
/// rejection the encoded entry point produces.
fn owned_oracle(
    program: &Program,
    trace: &Trace,
    bytes: &[u8],
    isolation: IsolationLevel,
    opts: AuditOptions,
) -> Outcome {
    match decode_advice_fast(bytes) {
        Ok((advice, _stats)) => {
            Outcome::of(audit_with_options(program, trace, &advice, isolation, opts))
        }
        Err(e) => Outcome::Reject(RejectReason::MalformedAdvice {
            what: e.to_string(),
        }),
    }
}

/// Asserts borrowed == oracle at every matrix point, and that every
/// matrix point agrees with the first (knobs cannot change verdicts).
/// Returns the agreed outcome.
fn assert_equivalent(
    program: &Program,
    trace: &Trace,
    bytes: &[u8],
    isolation: IsolationLevel,
    label: &str,
) -> Outcome {
    let mut first: Option<Outcome> = None;
    for opts in matrix() {
        let borrowed = Outcome::of(audit_encoded_with_options(
            program, trace, bytes, isolation, opts,
        ));
        let oracle = owned_oracle(program, trace, bytes, isolation, opts);
        assert_eq!(
            borrowed, oracle,
            "{label}: borrowed path diverges from owned oracle at \
             threads={} pipeline={} bytecode={}",
            opts.threads, opts.pipeline, opts.bytecode
        );
        match &first {
            None => first = Some(borrowed),
            Some(f) => assert_eq!(
                f, &borrowed,
                "{label}: verdict changed across the matrix at \
                 threads={} pipeline={} bytecode={}",
                opts.threads, opts.pipeline, opts.bytecode
            ),
        }
    }
    first.expect("matrix is non-empty")
}

fn prepare(app: App, mix: Mix, requests: usize) -> (Program, Trace, Vec<u8>, IsolationLevel) {
    let mut exp = Experiment::paper_default(app, mix, 8, 11);
    exp.requests = requests;
    let program = app.program();
    let (out, advice) = karousos::run_instrumented_server(
        &program,
        &exp.inputs(),
        &exp.server_config(),
        karousos::CollectorMode::Karousos,
    )
    .expect("instrumented run succeeds");
    (program, out.trace, encode_advice(&advice), exp.isolation)
}

/// Honest advice from every paper app: both paths must ACCEPT with
/// identical statistics and fuel at every matrix point.
#[test]
fn honest_apps_accept_identically() {
    for (app, mix, n) in [
        (App::Motd, Mix::RW_MIXES[1], 24),
        (App::Stacks, Mix::RW_MIXES[1], 24),
        (App::Wiki, Mix::Wiki, 16),
    ] {
        let (program, trace, bytes, isolation) = prepare(app, mix, n);
        let outcome = assert_equivalent(&program, &trace, &bytes, isolation, app.name());
        assert!(
            matches!(outcome, Outcome::Accept { .. }),
            "{}: honest advice rejected: {outcome:?}",
            app.name()
        );
    }
}

/// The hostile corpus: every wire mutator at many seeds. Whatever each
/// mutation does — decode error, verifier rejection, or (for benign
/// mutations) acceptance — both paths must agree exactly, including the
/// positioned decode error text and the typed `RejectReason`.
#[test]
fn hostile_mutations_verdict_identically() {
    let (program, trace, honest, isolation) = prepare(App::Motd, Mix::RW_MIXES[1], 12);

    // Hostile sweep on the two extreme matrix points only (serial
    // tree-walk and parallel pipelined bytecode): the honest test
    // already pins the full matrix, and each mutation is audited twice.
    let configs = [
        AuditOptions {
            threads: 1,
            pipeline: false,
            bytecode: false,
            ..Default::default()
        },
        AuditOptions {
            threads: 4,
            pipeline: true,
            bytecode: true,
            ..Default::default()
        },
    ];

    let mut compared = 0usize;
    let mut rejected = 0usize;
    for m in WireMutator::ALL {
        for seed in 0..32 {
            let Some(mutation) = m.apply(&honest, seed) else {
                continue;
            };
            let mut per_config: Vec<Outcome> = Vec::new();
            for opts in configs {
                let borrowed = Outcome::of(audit_encoded_with_options(
                    &program,
                    &trace,
                    &mutation.bytes,
                    isolation,
                    opts,
                ));
                let oracle = owned_oracle(&program, &trace, &mutation.bytes, isolation, opts);
                assert_eq!(
                    borrowed, oracle,
                    "{} seed {seed}: borrowed path diverges from owned oracle \
                     (threads={} pipeline={} bytecode={})",
                    mutation.mutator, opts.threads, opts.pipeline, opts.bytecode
                );
                per_config.push(borrowed);
            }
            assert_eq!(
                per_config[0], per_config[1],
                "{} seed {seed}: verdict changed across the matrix",
                mutation.mutator
            );
            if matches!(per_config[0], Outcome::Reject(_)) {
                rejected += 1;
            }
            compared += 1;
        }
    }
    assert!(
        compared >= 100,
        "only {compared} hostile mutations compared"
    );
    assert!(
        rejected >= 25,
        "only {rejected} mutations rejected; REJECT-side coverage too small"
    );
}
