//! Soundness suite: forged advice and tampered traces must be REJECTed.
//!
//! Each test mutates an honest `(trace, advice)` pair — or hand-crafts
//! advice, as a malicious server would — and asserts the audit rejects,
//! checking *which* defense fired where the paper pins it down.

use apps::App;
use karousos::advice::{AccessType, VarLogEntry};
use karousos::{audit, run_instrumented_server, Advice, CollectorMode, RejectReason, TxOpType};
use kem::dsl::*;
use kem::{HandlerId, OpRef, Program, ProgramBuilder, RequestId, Trace, Value};
use kvstore::IsolationLevel;
use workload::{Experiment, Mix};

const SER: IsolationLevel = IsolationLevel::Serializable;

/// Runs an honest experiment, returning everything an attacker starts
/// from.
fn honest(app: App, mix: Mix, n: usize, concurrency: usize, seed: u64) -> (Program, Trace, Advice) {
    let exp = {
        let mut e = Experiment::paper_default(app, mix, concurrency, seed);
        e.requests = n;
        e
    };
    let program = app.program();
    let (out, advice) = run_instrumented_server(
        &program,
        &exp.inputs(),
        &exp.server_config(),
        CollectorMode::Karousos,
    )
    .unwrap();
    (program, out.trace, advice)
}

#[test]
fn baseline_honest_accepts() {
    let (p, t, a) = honest(App::Stacks, Mix::Mixed, 25, 4, 9);
    audit(&p, &t, &a, SER).unwrap();
}

#[test]
fn tampered_output_rejected() {
    let (p, mut t, a) = honest(App::Motd, Mix::Mixed, 20, 4, 1);
    for ev in t.events_mut().iter_mut().rev() {
        if let kem::TraceEvent::Response { output, .. } = ev {
            *output = Value::str("forged response");
            break;
        }
    }
    assert!(audit(&p, &t, &a, SER).is_err());
}

#[test]
fn swapped_inputs_rejected() {
    let (p, mut t, a) = honest(App::Motd, Mix::Mixed, 20, 1, 2);
    // Swap the inputs of the first two requests (outputs stay).
    let mut inputs: Vec<Value> = Vec::new();
    for ev in t.events() {
        if let kem::TraceEvent::Request { input, .. } = ev {
            inputs.push(input.clone());
        }
    }
    let mut idx = 0;
    for ev in t.events_mut().iter_mut() {
        if let kem::TraceEvent::Request { input, .. } = ev {
            *input = inputs[[1usize, 0].get(idx).copied().unwrap_or(idx)].clone();
            idx += 1;
        }
    }
    assert!(audit(&p, &t, &a, SER).is_err());
}

#[test]
fn forged_var_log_value_rejected() {
    let (p, t, mut a) = honest(App::Motd, Mix::WriteHeavy, 20, 4, 3);
    // Corrupt the value of some logged write.
    let entry = a
        .var_logs
        .values_mut()
        .flat_map(|log| log.values_mut())
        .find(|e| e.access == AccessType::Write && e.value.is_some())
        .expect("write-heavy MOTD logs writes");
    entry.value = Some(Value::str("poison"));
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(
            err,
            RejectReason::VarLogMismatch { .. }
                | RejectReason::OutputMismatch { .. }
                // The poisoned value can also blow up re-execution
                // itself (e.g. a map operation on a string), which is
                // equally a rejection.
                | RejectReason::ReexecError { .. }
        ),
        "{err}"
    );
}

#[test]
fn dropped_var_log_entry_rejected() {
    let (p, t, mut a) = honest(App::Motd, Mix::WriteHeavy, 20, 4, 3);
    let (var, key) = {
        let (var, log) = a.var_logs.iter().next().expect("MOTD logs variables");
        (*var, log.keys().next().unwrap().clone())
    };
    a.var_logs.get_mut(&var).unwrap().remove(&key);
    assert!(audit(&p, &t, &a, SER).is_err());
}

#[test]
fn inflated_opcount_rejected() {
    let (p, t, mut a) = honest(App::Motd, Mix::Mixed, 10, 1, 4);
    let key = a.opcounts.keys().next().unwrap().clone();
    *a.opcounts.get_mut(&key).unwrap() += 1;
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(matches!(err, RejectReason::OpcountMismatch { .. }), "{err}");
}

#[test]
fn deflated_opcount_rejected() {
    let (p, t, mut a) = honest(App::Motd, Mix::Mixed, 10, 1, 4);
    let key = a
        .opcounts
        .iter()
        .find(|(_, c)| **c > 0)
        .map(|(k, _)| k.clone())
        .expect("some handler has ops");
    *a.opcounts.get_mut(&key).unwrap() -= 1;
    assert!(audit(&p, &t, &a, SER).is_err());
}

#[test]
fn phantom_handler_rejected() {
    let (p, t, mut a) = honest(App::Motd, Mix::Mixed, 10, 1, 5);
    // Report a handler that never ran, hanging off a real one.
    let ((rid, parent), _) = a.opcounts.iter().find(|(_, c)| **c > 0).unwrap();
    let phantom = HandlerId::child(parent, kem::FunctionId(0), 1);
    let rid = *rid;
    a.opcounts.insert((rid, phantom), 0);
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(
            err,
            RejectReason::HandlerNotExecuted { .. }
                | RejectReason::BadActivationParent { .. }
                | RejectReason::OpcountMismatch { .. }
        ),
        "{err}"
    );
}

#[test]
fn advice_for_unknown_request_rejected() {
    let (p, t, mut a) = honest(App::Motd, Mix::Mixed, 10, 1, 6);
    let ((_, hid), count) = a
        .opcounts
        .iter()
        .next()
        .map(|(k, c)| (k.clone(), *c))
        .unwrap();
    a.opcounts.insert((RequestId(999), hid), count);
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(matches!(err, RejectReason::UnknownRequest { .. }), "{err}");
}

#[test]
fn wrong_response_emitter_rejected() {
    let (p, t, mut a) = honest(App::Stacks, Mix::Mixed, 15, 1, 7);
    // Point some request's responseEmittedBy at a different handler of
    // the same request.
    let rid = *a.response_emitted_by.keys().next().unwrap();
    let other = a
        .opcounts
        .keys()
        .find(|(r, h)| *r == rid && Some(h) != a.response_emitted_by.get(&rid).map(|(h, _)| h))
        .map(|(_, h)| h.clone())
        .expect("stacks requests have several handlers");
    a.response_emitted_by.insert(rid, (other, 0));
    assert!(audit(&p, &t, &a, SER).is_err());
}

#[test]
fn missing_nondet_rejected() {
    let (p, t, mut a) = honest(App::Wiki, Mix::Wiki, 15, 2, 8);
    let key = a.nondet.keys().next().unwrap().clone();
    a.nondet.remove(&key);
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(matches!(err, RejectReason::MissingNondet { .. }), "{err}");
}

#[test]
fn tampered_nondet_rejected() {
    let (p, t, mut a) = honest(App::Wiki, Mix::Wiki, 15, 2, 8);
    let key = a.nondet.keys().next().unwrap().clone();
    a.nondet.insert(key, Value::int(123_456));
    assert!(audit(&p, &t, &a, SER).is_err());
}

#[test]
fn forged_put_value_rejected() {
    let (p, t, mut a) = honest(App::Stacks, Mix::WriteHeavy, 20, 1, 9);
    let entry = a
        .tx_logs
        .values_mut()
        .flatten()
        .find(|e| e.optype == TxOpType::Put)
        .expect("stacks writes rows");
    if let karousos::TxOpContents::Put { value } = &mut entry.contents {
        *value = Value::str("poison");
    }
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(
            err,
            RejectReason::StateOpMismatch { .. }
                | RejectReason::OutputMismatch { .. }
                | RejectReason::Isolation(_)
        ),
        "{err}"
    );
}

#[test]
fn truncated_write_order_rejected() {
    let (p, t, mut a) = honest(App::Stacks, Mix::WriteHeavy, 20, 1, 10);
    assert!(!a.write_order.is_empty());
    a.write_order.pop();
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(err, RejectReason::WriteOrderMismatch { .. }),
        "{err}"
    );
}

#[test]
fn reordered_write_order_rejected() {
    // Swap two committed writes of the same key: the inverted version
    // order contradicts the read dependencies.
    let (p, t, mut a) = honest(App::Stacks, Mix::WriteHeavy, 40, 1, 11);
    let mut by_key: std::collections::HashMap<String, Vec<usize>> = Default::default();
    for (i, pos) in a.write_order.iter().enumerate() {
        let key = a.tx_entry(pos).unwrap().key.clone().unwrap();
        by_key.entry(key).or_default().push(i);
    }
    let (i, j) = by_key
        .values()
        .find(|v| v.len() >= 2)
        .map(|v| (v[0], v[1]))
        .expect("some dump reported twice");
    a.write_order.swap(i, j);
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(
            err,
            RejectReason::Isolation(_)
                | RejectReason::CycleInG
                | RejectReason::WriteOrderMismatch { .. }
        ),
        "{err}"
    );
}

#[test]
fn aborted_transaction_claimed_committed_rejected() {
    // Find a run with at least one abort, then flip its last log entry
    // to a commit.
    for seed in 0..80u64 {
        let (p, t, mut a) = honest(App::Stacks, Mix::WriteHeavy, 25, 4, seed);
        let aborted = a
            .tx_logs
            .iter()
            .find(|(_, log)| log.last().is_some_and(|e| e.optype == TxOpType::Abort))
            .map(|(tx, _)| tx.clone());
        let Some(tx) = aborted else { continue };
        let log = a.tx_logs.get_mut(&tx).unwrap();
        let last = log.last_mut().unwrap();
        last.optype = TxOpType::Commit;
        last.key = None;
        assert!(audit(&p, &t, &a, SER).is_err());
        return;
    }
    panic!("no schedule with an aborted transaction found");
}

#[test]
fn merged_groups_reject_on_divergence() {
    // Force every request into one group: requests with different
    // control flow then diverge during batched re-execution.
    let (p, t, mut a) = honest(App::Motd, Mix::Mixed, 20, 1, 12);
    let tags: std::collections::BTreeSet<u64> = a.tags.values().copied().collect();
    assert!(tags.len() > 1, "mix produces several groups");
    for tag in a.tags.values_mut() {
        *tag = 1;
    }
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert!(
        matches!(
            err,
            RejectReason::Divergence { .. } | RejectReason::GroupSetupMismatch { .. }
        ),
        "{err}"
    );
}

#[test]
fn fully_split_groups_still_accept() {
    // Grouping is the server's choice: declining to batch loses
    // efficiency, not correctness.
    let (p, t, mut a) = honest(App::Motd, Mix::Mixed, 20, 4, 13);
    for (i, tag) in a.tags.values_mut().enumerate() {
        *tag = 10_000 + i as u64;
    }
    let report = audit(&p, &t, &a, SER).unwrap();
    assert_eq!(report.reexec.groups, 20);
}

#[test]
fn unbalanced_trace_rejected() {
    let (p, mut t, a) = honest(App::Motd, Mix::Mixed, 10, 1, 14);
    t.push_response(RequestId(0), Value::str("extra"));
    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert_eq!(err, RejectReason::UnbalancedTrace);
}

/// The Figure 5 attack: a dishonest server arranges advice and outputs
/// so each of two requests allegedly reads the *other's* write — a
/// physically impossible execution that out-of-order replay would
/// happily reproduce. The execution graph must contain a cycle.
#[test]
fn fig5_cross_reads_from_the_future_rejected() {
    // Program: t := x; x := input; respond t.
    let mut b = ProgramBuilder::new();
    b.shared_var("x", Value::Int(0), true);
    b.function(
        "handle",
        vec![
            let_("t", sread("x")),
            swrite("x", field(payload(), "v")),
            respond(local("t")),
        ],
    );
    b.request_handler("handle");
    let p = b.build().unwrap();

    let hid = HandlerId::root(p.function_id("handle").unwrap());
    let r0 = RequestId(0);
    let r1 = RequestId(1);
    let w0 = OpRef::new(r0, hid.clone(), 2);
    let w1 = OpRef::new(r1, hid.clone(), 2);
    let rd0 = OpRef::new(r0, hid.clone(), 1);
    let rd1 = OpRef::new(r1, hid.clone(), 1);
    let init = OpRef::new(RequestId::INIT, kem::init_handler_id(), 1);

    // Trace: both requests arrive, then the *impossible* responses —
    // each request returns the other's written value.
    let mut t = Trace::new();
    t.push_request(r0, Value::map([("v", Value::int(5))]));
    t.push_request(r1, Value::map([("v", Value::int(7))]));
    t.push_response(r0, Value::int(7)); // allegedly read r1's write
    t.push_response(r1, Value::int(5)); // allegedly read r0's write

    let mut a = Advice::default();
    a.tags.insert(r0, 1);
    a.tags.insert(r1, 1);
    a.opcounts.insert((r0, hid.clone()), 2);
    a.opcounts.insert((r1, hid.clone()), 2);
    a.response_emitted_by.insert(r0, (hid.clone(), 2));
    a.response_emitted_by.insert(r1, (hid.clone(), 2));
    let mut log = karousos::VarLog::new();
    // Write chain: init → w0 → w1 (consistent with simulate-and-check).
    log.insert(
        w0.clone(),
        VarLogEntry {
            access: AccessType::Write,
            value: Some(Value::int(5)),
            prec: Some(init),
        },
    );
    log.insert(
        w1.clone(),
        VarLogEntry {
            access: AccessType::Write,
            value: Some(Value::int(7)),
            prec: Some(w0.clone()),
        },
    );
    // The forged reads: r0 reads w1 (the future), r1 reads w0.
    log.insert(
        rd0,
        VarLogEntry {
            access: AccessType::Read,
            value: None,
            prec: Some(w1),
        },
    );
    log.insert(
        rd1,
        VarLogEntry {
            access: AccessType::Read,
            value: None,
            prec: Some(w0),
        },
    );
    a.var_logs.insert(p.var_id("x").unwrap(), log);

    let err = audit(&p, &t, &a, SER).unwrap_err();
    assert_eq!(
        err,
        RejectReason::CycleInG,
        "the execution graph must expose the cycle"
    );
}

#[test]
fn decode_of_corrupted_wire_advice_fails_cleanly() {
    let (_, _, a) = honest(App::Motd, Mix::Mixed, 10, 1, 15);
    let bytes = karousos::encode_advice(&a);
    // Truncations at arbitrary points must error, never panic.
    for cut in (0..bytes.len()).step_by(97) {
        assert!(karousos::decode_advice(&bytes[..cut]).is_err() || cut == bytes.len());
    }
    // Advice that survives the wire round-trips exactly.
    assert_eq!(karousos::decode_advice(&bytes).unwrap(), a);
}
