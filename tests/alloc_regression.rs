//! Allocation-regression guard for the verifier's group-replay hot path.
//!
//! A counting `#[global_allocator]` wraps the system allocator and
//! counts allocation *events* (alloc + realloc calls) while the
//! re-execution phase replays a uniform 64-request group. The budget
//! pinned here is the contract that slot-compiled frames and interned
//! symbols keep the hot loop allocation-free: if a change reintroduces
//! per-request `String`/`BTreeMap` traffic, this test fails CI.
//!
//! Run with `--release` for the numbers quoted in BENCH_PR3.json; the
//! assertion bound holds in both profiles because allocation counts,
//! unlike wall-clock, are deterministic and container-stable.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Wraps the system allocator, counting allocation events (calls to
/// `alloc`/`realloc`, not bytes) while `COUNTING` is enabled.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the tests in this file: the counting flag is global, so
/// two `#[test]` fns measuring concurrently would double-count.
static SERIAL: Mutex<()> = Mutex::new(());

/// Counts allocation events during `f`. Not reentrant; callers hold
/// `SERIAL` so the global flag cannot be flipped concurrently.
fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOC_EVENTS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let out = f();
    COUNTING.store(false, Ordering::SeqCst);
    (out, ALLOC_EVENTS.load(Ordering::SeqCst))
}

use kem::{dsl, ServerConfig, Value};

/// A handler-op-heavy program whose requests all take the same path:
/// locals, a non-loggable shared read/write, register / emit /
/// listenerCount / unregister, and a short loop. Every payload is
/// identical, so all `n` requests land in one re-execution group and
/// every multivalue stays uniform.
fn uniform_program() -> kem::Program {
    let mut b = kem::ProgramBuilder::new();
    b.shared_var("cfg", Value::int(7), false);
    b.function(
        "handle",
        vec![
            dsl::let_("x", dsl::field(dsl::payload(), "k")),
            dsl::let_("s", dsl::sread("cfg")),
            dsl::swrite("cfg", dsl::add(dsl::sread("cfg"), dsl::lit(0))),
            dsl::let_("y", dsl::add(dsl::local("x"), dsl::local("s"))),
            dsl::let_("i", dsl::lit(0)),
            dsl::while_(
                dsl::lt(dsl::local("i"), dsl::lit(8)),
                vec![
                    dsl::let_("acc", dsl::add(dsl::local("y"), dsl::local("i"))),
                    dsl::let_("i", dsl::add(dsl::local("i"), dsl::lit(1))),
                ],
            ),
            dsl::register("boom", "on_boom"),
            dsl::emit("boom", dsl::local("y")),
            dsl::listener_count("n", "boom"),
            dsl::unregister("boom", "on_boom"),
            dsl::respond(dsl::local("y")),
        ],
    );
    b.function(
        "on_boom",
        vec![dsl::let_("z", dsl::add(dsl::payload(), dsl::lit(1)))],
    );
    b.request_handler("handle");
    b.build().expect("uniform program builds")
}

/// Replays a uniform group of `n` identical requests under the given
/// interpreter and returns (allocation events during the replay phase,
/// total replayed ops).
fn replay_allocs(n: usize, bytecode: bool) -> (u64, u64) {
    let program = uniform_program();
    let cfg = ServerConfig::default();
    let inputs: Vec<Value> = (0..n)
        .map(|_| Value::from_map([("k".to_string(), Value::int(5))].into()))
        .collect();
    let (out, advice) = karousos::run_instrumented_server(
        &program,
        &inputs,
        &cfg,
        karousos::CollectorMode::Karousos,
    )
    .expect("server run succeeds");

    let ops: u64 = advice.opcounts.values().map(|&c| c as u64).sum();
    assert!(ops > 0, "scenario must replay at least one op");

    let advice = karousos::AdviceRef::from_advice(&advice);
    let pre = karousos::verifier::preprocess(&program, &out.trace, &advice, cfg.isolation)
        .expect("preprocess accepts honest advice");
    let mut vars = karousos::verifier::VarStates::new();
    // No loggable vars in the scenario, so the trusted init phase
    // installs nothing; replay starts from an empty dictionary.
    let (stats, allocs) = count_allocs(|| {
        karousos::verifier::ReExecutor::new(&program, &out.trace, &advice, &pre, &mut vars)
            .with_bytecode(bytecode)
            .run()
    });
    let stats = stats.expect("replay accepts honest advice");
    assert_eq!(stats.groups, 1, "identical payloads must form one group");
    (allocs, ops)
}

#[test]
fn uniform_group_replay_allocation_budget() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Warm-up run: let lazy one-time allocations (thread-local RNG
    // buffers, hash seeds) happen outside the measured window.
    let _ = replay_allocs(8, false);

    let (allocs_8, ops_8) = replay_allocs(8, false);
    let (allocs_64, ops_64) = replay_allocs(64, false);
    let per_op_8 = allocs_8 as f64 / ops_8 as f64;
    let per_op_64 = allocs_64 as f64 / ops_64 as f64;
    eprintln!("n=8:  {allocs_8} allocs / {ops_8} ops = {per_op_8:.3} allocs/op");
    eprintln!("n=64: {allocs_64} allocs / {ops_64} ops = {per_op_64:.3} allocs/op");

    // Pinned budget. Pre-refactor baseline (name-based interpreter,
    // commit 14c4229): 397 events / 256 ops = 1.551 allocs/op at n=64.
    // Slot-compiled frames + interned symbols measure 32 events
    // (0.125 allocs/op) — a 12.4x reduction, unchanged by the
    // persistent-value representation (its iterators keep their descent
    // stacks inline, so the digest/compare walks stay allocation-free);
    // the bound below leaves ~1.5x headroom for allocator/container
    // jitter while still failing loudly if per-request string or map
    // traffic comes back.
    assert!(
        allocs_64 <= 48,
        "uniform-group replay exceeded the allocation budget: \
         {allocs_64} allocs for {ops_64} ops (budget 48; measured 32)"
    );
    // The per-request marginal cost must stay ~zero: growing the group
    // 8x (56 extra requests, 224 extra replayed ops) may only add the
    // handful of events attributable to container growth.
    assert!(
        allocs_64.saturating_sub(allocs_8) <= 16,
        "replay allocations scale with group size: \
         n=8 -> {allocs_8}, n=64 -> {allocs_64} (marginal budget 16)"
    );
}

/// The bytecode VM must hold the same uniform-group budget as the
/// tree-walk — and never allocate *more*: its frame buffers (locals,
/// opcount cache, operand stack, loop/iterator scratch) are pooled on
/// the executor and reused across groups, so the only allocations left
/// are the semantic ones both interpreters share.
#[test]
fn bytecode_vm_uniform_replay_allocation_budget() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _ = replay_allocs(8, true);

    let (tree_walk, _) = replay_allocs(64, false);
    let (vm, ops) = replay_allocs(64, true);
    eprintln!("n=64: tree-walk {tree_walk} allocs, bytecode VM {vm} allocs / {ops} ops");
    assert!(
        vm <= tree_walk,
        "bytecode VM allocates more than the tree-walk on a uniform \
         group: {vm} vs {tree_walk} events"
    );
    assert!(
        vm <= 48,
        "bytecode-VM uniform-group replay exceeded the allocation \
         budget: {vm} allocs for {ops} ops (budget 48)"
    );
}

/// Real-application bytecode-replay budget: a stacks workload (the
/// most interpreter-dominated of the paper apps) replayed group by
/// group. Allocation counts are deterministic, so the VM-never-worse
/// pin is exact, and the absolute per-op ceiling guards against
/// per-activation frame traffic coming back on either path.
#[test]
fn stacks_group_replay_allocation_budget() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    use apps::App;
    use workload::{Experiment, Mix};

    let mut exp = Experiment::paper_default(App::Stacks, Mix::RW_MIXES[1], 8, 11);
    exp.requests = 64;
    let program = App::Stacks.program();
    let (out, advice) = karousos::run_instrumented_server(
        &program,
        &exp.inputs(),
        &exp.server_config(),
        karousos::CollectorMode::Karousos,
    )
    .expect("stacks run succeeds");
    let ops: u64 = advice.opcounts.values().map(|&c| c as u64).sum();
    let advice = karousos::AdviceRef::from_advice(&advice);
    let pre = karousos::verifier::preprocess(&program, &out.trace, &advice, exp.isolation)
        .expect("preprocess accepts honest advice");
    let replay = |bytecode: bool| {
        let mut vars = karousos::verifier::VarStates::new();
        karousos::verifier::init_vars(&program, &mut vars);
        let (stats, allocs) = count_allocs(|| {
            karousos::verifier::ReExecutor::new(&program, &out.trace, &advice, &pre, &mut vars)
                .with_bytecode(bytecode)
                .run()
        });
        let stats = stats.expect("replay accepts honest advice");
        (allocs, stats)
    };
    // Warm-up, then measure both interpreters.
    let _ = replay(false);
    let (tree_walk, stats_tw) = replay(false);
    let (vm, stats_vm) = replay(true);
    let per_op_tw = tree_walk as f64 / ops as f64;
    let per_op_vm = vm as f64 / ops as f64;
    eprintln!(
        "stacks n=64: tree-walk {tree_walk} allocs ({per_op_tw:.3}/op), \
         bytecode VM {vm} allocs ({per_op_vm:.3}/op), fuel {}",
        stats_vm.fuel_spent
    );
    assert_eq!(
        stats_tw, stats_vm,
        "interpreters disagree on honest stacks stats"
    );
    assert!(
        vm <= tree_walk,
        "bytecode VM allocates more than the tree-walk on stacks: \
         {vm} vs {tree_walk} events"
    );
    // Most stacks replay allocations are semantic (persistent map/list
    // updates shared by both interpreters — see EXPERIMENTS.md); the
    // ceiling pins them plus headroom so per-activation frame or string
    // traffic fails loudly. PR 8 measures 5.55/op (VM): list pushes on
    // >CHUNK lists copy one leaf plus a short spine (a few small
    // allocations, O(CHUNK) copied bytes instead of O(n)), transaction
    // continuation payloads build single-leaf maps from interned keys,
    // and bulk map builds move their entry buffer straight into the
    // leaf.
    assert!(
        per_op_vm <= 8.0,
        "stacks bytecode replay exceeded the per-op allocation ceiling: \
         {per_op_vm:.3} allocs/op (ceiling 8.0)"
    );
}

/// Decode-phase allocation budget, pinning the PR 5 zero-copy gains
/// rather than measuring them once. Two layers:
///
/// * the borrowed **view** decoder (`decode_advice_view`) — the actual
///   zero-copy decode — must stay >= 8x below the owned decoder in
///   allocation events;
/// * the end-to-end fast path (`decode_advice_fast` = view decode +
///   interned materialization of the owned `Advice` the verifier
///   consumes) must stay >= 3x below, with its residual string copies
///   strictly under the owned path's.
///
/// Uses a wiki-style workload because its advice carries the repeated
/// event names, handler ids, and string values the interner and
/// handler-id span cache exist for.
#[test]
fn decode_phase_allocation_budget() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    use apps::App;
    use workload::{Experiment, Mix};

    let mut exp = Experiment::paper_default(App::Wiki, Mix::Wiki, 4, 11);
    exp.requests = 64;
    let program = App::Wiki.program();
    let (_, advice) = karousos::run_instrumented_server(
        &program,
        &exp.inputs(),
        &exp.server_config(),
        karousos::CollectorMode::Karousos,
    )
    .expect("wiki run succeeds");
    let bytes = karousos::encode_advice(&advice);

    // Warm-up all paths (hash seeds, lazy statics).
    let _ = karousos::decode_advice(&bytes).expect("decodes");
    let _ = karousos::decode_advice_view(&bytes).expect("decodes");
    let _ = karousos::decode_advice_fast(&bytes).expect("decodes");

    let (owned, owned_allocs) = count_allocs(|| karousos::decode_advice(&bytes));
    let owned = owned.expect("owned decode accepts");
    let (_, view_allocs) = count_allocs(|| karousos::decode_advice_view(&bytes).map(|_| ()));
    let (fast, fast_allocs) = count_allocs(|| karousos::decode_advice_fast(&bytes));
    let (fast, stats) = fast.expect("fast decode accepts");
    assert_eq!(fast, owned, "decoders disagree on honest advice");

    eprintln!(
        "decode allocs: owned {owned_allocs}, view {view_allocs} ({:.1}x fewer), \
         fast {fast_allocs} ({:.1}x fewer); {} wire bytes, {} copied",
        owned_allocs as f64 / view_allocs.max(1) as f64,
        owned_allocs as f64 / fast_allocs.max(1) as f64,
        bytes.len(),
        stats.bytes_copied
    );

    // Measured at introduction: owned 20309, view 1418 (14.3x fewer),
    // fast 7593 (2.7x fewer), 13058 of 63720 wire bytes copied. With
    // the persistent-value representation (PR 8) map keys decode
    // straight into interned `Arc<str>`s and bulk map builds reuse the
    // entry buffer: owned 18584, view 1418 (13.1x fewer), fast 4649
    // (4.0x fewer), 3604 bytes copied. The bounds leave headroom for
    // workload drift while still failing loudly if per-entry copying
    // comes back.
    assert!(
        view_allocs.saturating_mul(8) <= owned_allocs,
        "zero-copy view decode regressed: {view_allocs} allocs vs owned \
         {owned_allocs} (pin: >= 8x fewer)"
    );
    assert!(
        fast_allocs.saturating_mul(3) <= owned_allocs,
        "fast decode regressed: {fast_allocs} allocs vs owned {owned_allocs} \
         (pin: >= 3x fewer)"
    );
    assert!(
        stats.bytes_copied < karousos::owned_decode_copy_bytes(&owned),
        "zero-copy decode copied {} bytes, owned-equivalent {}",
        stats.bytes_copied,
        karousos::owned_decode_copy_bytes(&owned)
    );
}

/// A handler-log-heavy variant of [`uniform_program`]: five
/// register/count/unregister rounds per request (plus one emit), so the
/// advice is dominated by handler-log entries — the section the
/// borrowed path keeps as wire-backed slices while an owned decode
/// materializes a `String`-carrying `HandlerLogEntry` per entry.
fn handler_heavy_program() -> kem::Program {
    let mut b = kem::ProgramBuilder::new();
    b.shared_var("cfg", Value::int(7), false);
    let mut body = vec![
        dsl::let_("x", dsl::field(dsl::payload(), "k")),
        dsl::let_("s", dsl::sread("cfg")),
        dsl::swrite("cfg", dsl::add(dsl::sread("cfg"), dsl::lit(0))),
        dsl::let_("y", dsl::add(dsl::local("x"), dsl::local("s"))),
        dsl::register("boom", "on_boom"),
        dsl::emit("boom", dsl::local("y")),
        dsl::listener_count("n", "boom"),
        dsl::unregister("boom", "on_boom"),
    ];
    for event in ["tick", "tock", "chime", "bell"] {
        body.push(dsl::register(event, "on_boom"));
        body.push(dsl::listener_count("n", event));
        body.push(dsl::unregister(event, "on_boom"));
    }
    body.push(dsl::respond(dsl::local("y")));
    b.function("handle", body);
    b.function(
        "on_boom",
        vec![dsl::let_("z", dsl::add(dsl::payload(), dsl::lit(1)))],
    );
    b.request_handler("handle");
    b.build().expect("handler-heavy program builds")
}

/// End-to-end audit allocation budget: the borrowed accept path
/// (`audit_encoded_*` = view decode + `AdviceRef::from_view` +
/// preprocess + replay + postprocess) versus the owned paths
/// (`decode_advice` / `decode_advice_fast` into an owned `Advice`,
/// then the same audit). All produce identical verdicts
/// (tests/borrowed_audit.rs); this test pins the *cost* difference at
/// 600 requests: the borrowed path must allocate >= 3x fewer events
/// than auditing from a plainly-decoded `Advice` and >= 2x fewer than
/// the interning fast decoder, because the only copies it makes are
/// the values replay actually retains.
#[test]
fn end_to_end_borrowed_audit_allocation_budget() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());

    let n = 600usize;
    let program = handler_heavy_program();
    let cfg = ServerConfig::default();
    let inputs: Vec<Value> = (0..n)
        .map(|_| Value::from_map([("k".to_string(), Value::int(5))].into()))
        .collect();
    let (out, advice) = karousos::run_instrumented_server(
        &program,
        &inputs,
        &cfg,
        karousos::CollectorMode::Karousos,
    )
    .expect("server run succeeds");
    let bytes = karousos::encode_advice(&advice);
    drop(advice);
    let opts = karousos::AuditOptions {
        threads: 1,
        pipeline: false,
        bytecode: true,
        ..Default::default()
    };

    let borrowed_audit = || {
        karousos::audit_encoded_with_options(&program, &out.trace, &bytes, cfg.isolation, opts)
            .expect("borrowed audit accepts honest advice")
    };
    let owned_audit = || {
        let owned = karousos::decode_advice(&bytes).expect("owned decode accepts");
        karousos::audit_with_options(&program, &out.trace, &owned, cfg.isolation, opts)
            .expect("owned audit accepts honest advice")
    };
    let fast_audit = || {
        let (owned, _) = karousos::decode_advice_fast(&bytes).expect("fast decode accepts");
        karousos::audit_with_options(&program, &out.trace, &owned, cfg.isolation, opts)
            .expect("fast-decoded audit accepts honest advice")
    };

    // Warm-up all paths, then measure.
    let warm_b = borrowed_audit();
    let warm_o = owned_audit();
    let warm_f = fast_audit();
    assert_eq!(warm_b.reexec, warm_o.reexec, "paths disagree on stats");
    assert_eq!(warm_b.reexec, warm_f.reexec, "paths disagree on stats");
    let (report_b, allocs_borrowed) = count_allocs(borrowed_audit);
    let (report_o, allocs_owned) = count_allocs(owned_audit);
    let (_, allocs_fast) = count_allocs(fast_audit);
    assert_eq!(report_b.reexec, report_o.reexec);

    eprintln!(
        "end-to-end audit allocs at {n} requests: owned {allocs_owned}, \
         fast {allocs_fast} ({:.1}x fewer), borrowed {allocs_borrowed} \
         ({:.1}x fewer)",
        allocs_owned as f64 / allocs_fast.max(1) as f64,
        allocs_owned as f64 / allocs_borrowed.max(1) as f64
    );

    // Measured at introduction: owned 43421, fast 20630, borrowed 9334
    // (4.7x / 2.2x fewer) — the gap is the per-entry String/BTreeMap
    // traffic of materializing `Advice`, which the borrowed path never
    // pays: its handler logs stay borrowed wire slices, and its decode
    // phase is 613 events against the fast decoder's 11305. The pins
    // leave headroom for workload drift while failing loudly if owned
    // materialization creeps back into the accept path.
    assert!(
        allocs_borrowed.saturating_mul(3) <= allocs_owned,
        "borrowed audit path regressed: {allocs_borrowed} allocs vs owned \
         {allocs_owned} (pin: >= 3x fewer end-to-end)"
    );
    assert!(
        allocs_borrowed.saturating_mul(2) <= allocs_fast,
        "borrowed audit path regressed: {allocs_borrowed} allocs vs \
         fast-decoded {allocs_fast} (pin: >= 2x fewer end-to-end)"
    );
}
