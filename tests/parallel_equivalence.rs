//! Determinism keystone for the parallel verifier: an audit's outcome
//! — verdict, statistics, and on rejection the exact [`RejectReason`]
//! — must be independent of the worker-thread count AND of the
//! pipelined-audit toggle. Workers replay whole groups with local
//! state and the merge phase re-applies their variable-access streams
//! in ascending group order (barrier or streaming), while the sharded
//! preprocess and deferred edge merge reproduce the serial section
//! order exactly; so every `(threads, pipeline)` point runs the same
//! logical event sequence. This test pins that equivalence across
//! every app, every isolation level, and a broad sample of
//! hostile-advice mutations.

use apps::App;
use karousos::{
    audit_encoded_with_options, audit_with_options, encode_advice, run_instrumented_server,
    AuditOptions, AuditReport, CollectorMode, Mutator, RejectReason, WireMutator,
};
use kvstore::IsolationLevel;
use workload::{Experiment, Mix};

/// The full audit matrix: every thread count crossed with the
/// pipelined-audit toggle. `(1, pipeline: false)` is the strictly
/// barrier-separated serial audit every other point must match.
fn matrix() -> Vec<AuditOptions> {
    let mut configs = Vec::new();
    for pipeline in [false, true] {
        for threads in [1, 2, 4, 8] {
            configs.push(AuditOptions {
                threads,
                pipeline,
                ..AuditOptions::default()
            });
        }
    }
    configs
}

/// The serial barrier-separated baseline.
fn baseline() -> AuditOptions {
    AuditOptions {
        threads: 1,
        pipeline: false,
        ..AuditOptions::default()
    }
}

/// The comparable portion of an audit outcome (timing excluded: it is
/// the one field that legitimately varies run to run).
type Outcome = Result<(karousos::ReexecStats, usize, usize), RejectReason>;

fn comparable(r: Result<AuditReport, RejectReason>) -> Outcome {
    r.map(|rep| (rep.reexec, rep.graph_nodes, rep.graph_edges))
}

fn honest_run(
    app: App,
    isolation: IsolationLevel,
    seed: u64,
) -> (kem::Program, kem::Trace, karousos::Advice) {
    let mix = if app == App::Wiki {
        Mix::Wiki
    } else {
        Mix::RW_MIXES[1]
    };
    let mut exp = Experiment::paper_default(app, mix, 4, seed);
    exp.requests = 16;
    exp.isolation = isolation;
    let program = app.program();
    let (out, advice) = run_instrumented_server(
        &program,
        &exp.inputs(),
        &exp.server_config(),
        CollectorMode::Karousos,
    )
    .expect("apps run cleanly");
    (program, out.trace, advice)
}

#[test]
fn honest_audits_agree_across_thread_counts() {
    for app in App::ALL {
        for isolation in IsolationLevel::ALL {
            let (program, trace, advice) = honest_run(app, isolation, 42);
            let sequential = comparable(audit_with_options(
                &program,
                &trace,
                &advice,
                isolation,
                baseline(),
            ));
            assert!(
                sequential.is_ok(),
                "sequential audit rejected honest {} run at {isolation}: {:?}",
                app.name(),
                sequential
            );
            for opts in matrix() {
                let parallel = comparable(audit_with_options(
                    &program, &trace, &advice, isolation, opts,
                ));
                assert_eq!(
                    sequential,
                    parallel,
                    "{} at {isolation}: serial baseline vs threads={} pipeline={} disagree",
                    app.name(),
                    opts.threads,
                    opts.pipeline
                );
            }
        }
    }
}

#[test]
fn hostile_audits_agree_across_thread_counts() {
    // Every structured and wire mutator, several seeds, all apps: the
    // parallel audit must REJECT exactly when the sequential one does,
    // for exactly the same reason. (Seed count is bounded to keep this
    // test's mutation sample a few hundred strong but quick; the full
    // 1000+ sweep runs in hostile_advice.rs under the CI thread
    // matrix.)
    const SEEDS: u64 = 6;
    let mut checked = 0usize;
    let mut rejected = 0usize;
    for (i, (app, isolation)) in App::ALL.iter().zip(IsolationLevel::ALL).enumerate() {
        let (program, trace, advice) = honest_run(*app, isolation, 500 + i as u64);
        let honest_bytes = encode_advice(&advice);

        let mut check = |bytes: &[u8], label: &str| {
            let sequential = comparable(audit_encoded_with_options(
                &program,
                &trace,
                bytes,
                isolation,
                baseline(),
            ));
            if sequential.is_err() {
                rejected += 1;
            }
            for opts in matrix() {
                let parallel = comparable(audit_encoded_with_options(
                    &program, &trace, bytes, isolation, opts,
                ));
                assert_eq!(
                    sequential,
                    parallel,
                    "{label} on {} at {isolation}: serial baseline vs threads={} pipeline={} disagree",
                    app.name(),
                    opts.threads,
                    opts.pipeline
                );
            }
            checked += 1;
        };

        for m in Mutator::ALL {
            for seed in 0..SEEDS {
                if let Some(mutation) = m.apply(&advice, seed) {
                    check(&mutation.bytes, mutation.mutator);
                }
            }
        }
        for m in WireMutator::ALL {
            for seed in 0..SEEDS {
                if let Some(mutation) = m.apply(&honest_bytes, seed) {
                    check(&mutation.bytes, mutation.mutator);
                }
            }
        }
    }
    assert!(
        checked >= 200,
        "only {checked} mutations compared; sample too small"
    );
    assert!(
        rejected >= 100,
        "only {rejected} rejections compared; REJECT-side coverage too small"
    );
}

#[test]
fn auto_thread_count_resolves_and_agrees() {
    // `threads = 0` (one worker per core) is the deployment setting;
    // it must agree with the sequential path too.
    let (program, trace, advice) = honest_run(App::Stacks, IsolationLevel::Serializable, 7);
    let sequential = comparable(audit_with_options(
        &program,
        &trace,
        &advice,
        IsolationLevel::Serializable,
        baseline(),
    ));
    for pipeline in [false, true] {
        let auto = comparable(audit_with_options(
            &program,
            &trace,
            &advice,
            IsolationLevel::Serializable,
            AuditOptions {
                threads: 0,
                pipeline,
                ..AuditOptions::default()
            },
        ));
        assert_eq!(sequential, auto, "auto threads, pipeline={pipeline}");
    }
}
