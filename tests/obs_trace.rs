//! Telemetry integration: the Chrome `trace_event` exporter emits
//! valid JSON with the expected span set and per-lane monotone
//! timestamps, and the metrics registry is deterministic across
//! worker-thread counts (worker shards are absorbed in ascending group
//! order, the same discipline as the verifier's edge fragments).

use apps::App;
use karousos::{audit_with_obs, run_instrumented_server, AuditOptions, CollectorMode};
use obs::{CounterId, GaugeId, HistogramId, Obs};
use workload::{Experiment, Mix};

/// Minimal recursive-descent JSON validator: enough to assert the
/// exporters emit well-formed JSON without pulling in a parser crate.
mod json {
    pub fn validate(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0;
        value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing garbage at byte {i}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, "true"),
            Some(b'f') => literal(b, i, "false"),
            Some(b'n') => literal(b, i, "null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            other => Err(format!("unexpected {other:?} at byte {i}")),
        }
    }

    fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
        if b[*i..].starts_with(lit.as_bytes()) {
            *i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {i}"))
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        while *i < b.len()
            && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *i += 1;
        }
        let text = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map_err(|e| format!("bad number {text:?}: {e}"))?;
        Ok(())
    }

    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        *i += 1; // opening quote
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => *i += 2,
                c if c < 0x20 => return Err(format!("raw control byte in string at {i}")),
                _ => *i += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
        *i += 1; // '{'
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, i);
            if b.get(*i) != Some(&b'"') {
                return Err(format!("object key must be a string at byte {i}"));
            }
            string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("missing ':' at byte {i}"));
            }
            *i += 1;
            value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(());
                }
                other => return Err(format!("unexpected {other:?} in object at byte {i}")),
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
        *i += 1; // '['
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(());
        }
        loop {
            value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(());
                }
                other => return Err(format!("unexpected {other:?} in array at byte {i}")),
            }
        }
    }
}

fn wiki_run() -> (
    kem::Program,
    kem::RunOutput,
    karousos::Advice,
    kvstore::IsolationLevel,
) {
    let mut exp = Experiment::paper_default(App::Wiki, Mix::Wiki, 8, 3);
    exp.requests = 60;
    let program = App::Wiki.program();
    let inputs = exp.inputs();
    let (out, advice) = run_instrumented_server(
        &program,
        &inputs,
        &exp.server_config(),
        CollectorMode::Karousos,
    )
    .expect("wiki app runs");
    (program, out, advice, exp.isolation)
}

#[test]
fn chrome_trace_is_valid_json_with_expected_spans() {
    let (program, out, advice, iso) = wiki_run();
    let obs = Obs::enabled();
    audit_with_obs(
        &program,
        &out.trace,
        &advice,
        iso,
        AuditOptions::with_threads(4),
        &obs,
    )
    .expect("honest advice must be accepted");

    let trace = obs.trace_json();
    json::validate(&trace).expect("trace export must be valid JSON");
    for needle in [
        "\"traceEvents\"",
        "\"displayTimeUnit\"",
        "\"preprocess\"",
        "\"group-replay\"",
        "\"state-merge\"",
        "\"cycle-check\"",
        "\"ph\":\"X\"",
    ] {
        assert!(trace.contains(needle), "trace export missing {needle}");
    }

    let metrics = obs.metrics_json();
    json::validate(&metrics).expect("metrics export must be valid JSON");
    assert!(metrics.contains("\"groups_formed\""));
    // The export splices the final progress heartbeat and the cost
    // ledger after the shard sections.
    assert!(metrics.contains("\"progress\""), "{metrics}");
    assert!(metrics.contains("\"phase\": \"done\""), "{metrics}");
    assert!(metrics.contains("\"ledger\""), "{metrics}");
    assert!(metrics.contains("\"first_rid\""), "{metrics}");
}

#[test]
fn overflowing_span_ring_counts_drops_in_metrics() {
    let (program, out, advice, iso) = wiki_run();
    // Two span slots cannot hold the audit's span set; the overflow
    // must be counted, not silently discarded.
    let obs = Obs::with_capacity(2);
    audit_with_obs(
        &program,
        &out.trace,
        &advice,
        iso,
        AuditOptions::with_threads(4),
        &obs,
    )
    .expect("honest advice must be accepted");
    assert!(obs.spans_snapshot().len() <= 2);
    let dropped = obs.metrics_snapshot().counter(CounterId::SpansDropped);
    assert!(dropped > 0, "span overflow must surface in SpansDropped");
    // And the exported JSON carries the same number.
    let metrics = obs.metrics_json();
    assert!(
        metrics.contains(&format!("\"spans_dropped\": {dropped}")),
        "{metrics}"
    );
}

#[test]
fn span_timestamps_are_monotone_per_lane() {
    let (program, out, advice, iso) = wiki_run();
    let obs = Obs::enabled();
    audit_with_obs(
        &program,
        &out.trace,
        &advice,
        iso,
        AuditOptions::with_threads(4),
        &obs,
    )
    .expect("honest advice must be accepted");

    let spans = obs.spans_snapshot();
    assert!(!spans.is_empty());
    let mut replay_spans = 0usize;
    let mut last_ts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for s in &spans {
        let prev = last_ts.entry(s.lane).or_insert(0);
        assert!(
            s.ts_us >= *prev,
            "lane {} span {:?} went backwards: {} < {prev}",
            s.lane,
            s.name,
            s.ts_us
        );
        *prev = s.ts_us;
        if s.name == "group-replay" {
            replay_spans += 1;
            assert!(s.args.iter().flatten().any(|(k, _)| *k == "group"));
            assert!(s.args.iter().flatten().any(|(k, _)| *k == "size"));
        }
    }
    let groups = obs.metrics_snapshot().counter(CounterId::GroupsFormed);
    assert!(groups > 1, "wiki workload should form several groups");
    assert_eq!(replay_spans as u64, groups, "one replay span per group");
}

#[test]
fn metrics_are_deterministic_across_thread_counts() {
    let (program, out, advice, iso) = wiki_run();
    let snapshot = |threads: usize| {
        let obs = Obs::enabled();
        audit_with_obs(
            &program,
            &out.trace,
            &advice,
            iso,
            AuditOptions::with_threads(threads),
            &obs,
        )
        .expect("honest advice must be accepted");
        obs.metrics_snapshot()
    };
    let seq = snapshot(1);
    let par = snapshot(4);
    for c in CounterId::ALL {
        assert_eq!(
            seq.counter(c),
            par.counter(c),
            "counter {} must not depend on the worker count",
            c.name()
        );
    }
    // Timing histograms legitimately differ; the structural ones must
    // not.
    for h in [HistogramId::GroupSize, HistogramId::VarLogLen] {
        assert_eq!(seq.histogram(h), par.histogram(h), "histogram {}", h.name());
    }
    // WorkerThreads is *expected* to differ; the graph-shape gauges
    // must not.
    assert_eq!(
        seq.gauge_value(GaugeId::GraphNodes),
        par.gauge_value(GaugeId::GraphNodes)
    );
    assert_eq!(
        seq.gauge_value(GaugeId::GraphEdges),
        par.gauge_value(GaugeId::GraphEdges)
    );
    assert_eq!(seq.gauge_value(GaugeId::WorkerThreads), Some(1));
    assert_eq!(par.gauge_value(GaugeId::WorkerThreads), Some(4));

    // The per-kind edge counters decompose the edge gauge exactly.
    let edge_sum: u64 = [
        CounterId::EdgesTime,
        CounterId::EdgesProgram,
        CounterId::EdgesBoundary,
        CounterId::EdgesActivation,
        CounterId::EdgesHandlerLog,
        CounterId::EdgesExternalWr,
        CounterId::EdgesVarWr,
        CounterId::EdgesVarWw,
        CounterId::EdgesVarRw,
    ]
    .iter()
    .map(|&c| seq.counter(c))
    .sum();
    assert_eq!(Some(edge_sum), seq.gauge_value(GaugeId::GraphEdges));
}
