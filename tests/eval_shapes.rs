//! The paper's qualitative evaluation claims, as regression tests.
//!
//! These encode the *shapes* from §6 (who batches better, who logs
//! less) so that refactors cannot silently regress the properties the
//! figures depend on. Timing claims live in the bench harness, not
//! here.

use apps::App;
use karousos::{audit, encode_advice, run_instrumented_server, CollectorMode};
use kvstore::IsolationLevel;
use workload::{Experiment, Mix};

fn collect(
    app: App,
    mix: Mix,
    n: usize,
    concurrency: usize,
    seed: u64,
    mode: CollectorMode,
) -> (kem::Program, kem::Trace, karousos::Advice) {
    let mut exp = Experiment::paper_default(app, mix, concurrency, seed);
    exp.requests = n;
    let program = app.program();
    let (out, advice) =
        run_instrumented_server(&program, &exp.inputs(), &exp.server_config(), mode).unwrap();
    (program, out.trace, advice)
}

/// §6.2: "Because there is only one handler … Batching is also the
/// same because, with no tree of handlers, Karousos and Orochi-JS
/// group identically" (MOTD).
#[test]
fn motd_groups_identical_across_modes() {
    let (_, t_k, a_k) = collect(App::Motd, Mix::Mixed, 60, 8, 3, CollectorMode::Karousos);
    let (_, t_o, a_o) = collect(App::Motd, Mix::Mixed, 60, 8, 3, CollectorMode::OrochiJs);
    assert_eq!(
        a_k.groups(&t_k.request_ids()).len(),
        a_o.groups(&t_o.request_ids()).len()
    );
}

/// §6.2: more concurrently-activated handlers ⇒ Orochi-JS's
/// sequence-sensitive grouping fragments while Karousos's tree-shaped
/// grouping does not (stacks, wiki).
#[test]
fn tree_grouping_batches_better_under_concurrency() {
    for app in [App::Stacks, App::Wiki] {
        let mix = if app == App::Wiki {
            Mix::Wiki
        } else {
            Mix::Mixed
        };
        let mut fragmented_somewhere = false;
        for seed in 0..5u64 {
            let (_, t_k, a_k) = collect(app, mix, 50, 8, seed, CollectorMode::Karousos);
            let (_, t_o, a_o) = collect(app, mix, 50, 8, seed, CollectorMode::OrochiJs);
            let gk = a_k.groups(&t_k.request_ids()).len();
            let go = a_o.groups(&t_o.request_ids()).len();
            assert!(gk <= go, "{}: karousos {gk} > orochi {go}", app.name());
            if go > gk {
                fragmented_somewhere = true;
            }
        }
        assert!(
            fragmented_somewhere,
            "{}: expected Orochi-JS to fragment on some schedule",
            app.name()
        );
    }
}

/// §4.2/§6.3: Karousos logs only R-concurrent accesses, so its
/// variable logs are never larger than Orochi-JS's log-everything.
#[test]
fn karousos_never_logs_more() {
    for app in App::ALL {
        let mix = if app == App::Wiki {
            Mix::Wiki
        } else {
            Mix::Mixed
        };
        let (_, _, a_k) = collect(app, mix, 50, 6, 1, CollectorMode::Karousos);
        let (_, _, a_o) = collect(app, mix, 50, 6, 1, CollectorMode::OrochiJs);
        assert!(
            a_k.var_log_entries() <= a_o.var_log_entries(),
            "{}: {} > {}",
            app.name(),
            a_k.var_log_entries(),
            a_o.var_log_entries()
        );
        assert!(
            encode_advice(&a_k).len() <= encode_advice(&a_o).len(),
            "{}: advice bytes",
            app.name()
        );
    }
}

/// §6.3: wiki advice is strictly smaller under Karousos (the
/// R-ordered pool/context accesses Orochi-JS must log).
#[test]
fn wiki_advice_strictly_smaller_at_low_concurrency() {
    let (_, _, a_k) = collect(App::Wiki, Mix::Wiki, 60, 1, 2, CollectorMode::Karousos);
    let (_, _, a_o) = collect(App::Wiki, Mix::Wiki, 60, 1, 2, CollectorMode::OrochiJs);
    let k = encode_advice(&a_k).len();
    let o = encode_advice(&a_o).len();
    assert!(
        (k as f64) < (o as f64) * 0.9,
        "expected ≥10% saving, got {k} vs {o}"
    );
}

/// §6.3: wiki advice grows with the number of concurrent requests.
#[test]
fn wiki_advice_grows_with_concurrency() {
    let (_, _, low) = collect(App::Wiki, Mix::Wiki, 60, 1, 2, CollectorMode::Karousos);
    let (_, _, high) = collect(App::Wiki, Mix::Wiki, 60, 12, 2, CollectorMode::Karousos);
    assert!(
        encode_advice(&high).len() > encode_advice(&low).len(),
        "advice should grow with concurrency"
    );
}

/// §2.3/§6.2: batched re-execution interprets each group's handler
/// bodies once — substantial deduplication on group-friendly apps.
#[test]
fn batching_deduplicates_handler_executions() {
    let (p, t, a) = collect(
        App::Stacks,
        Mix::ReadHeavy,
        60,
        1,
        4,
        CollectorMode::Karousos,
    );
    let report = audit(&p, &t, &a, IsolationLevel::Serializable).unwrap();
    let dedup =
        report.reexec.activations_covered as f64 / report.reexec.handlers_executed.max(1) as f64;
    assert!(dedup > 3.0, "dedup factor only {dedup:.1}");
}

/// §6.3: MOTD advice is dominated by variable logs (paper: ~95%).
#[test]
fn motd_advice_is_mostly_variable_logs() {
    let (_, _, a) = collect(
        App::Motd,
        Mix::WriteHeavy,
        60,
        4,
        5,
        CollectorMode::Karousos,
    );
    let sizes = karousos::advice_sizes(&a);
    assert!(
        sizes.var_logs * 100 / sizes.total().max(1) >= 80,
        "var logs are only {}% of advice",
        sizes.var_logs * 100 / sizes.total().max(1)
    );
}
