//! Hostile-advice fault injection (the robustness keystone).
//!
//! The advice is attacker-controlled (§3), so the verifier owes three
//! guarantees on *every* input: it never panics (a panic is a
//! denial-of-audit), it never ACCEPTs advice whose semantics were
//! tampered with, and it still ACCEPTs advice whose representation
//! merely changed (Lemma 3: grouping does not affect the verdict).
//!
//! This harness takes honest runs of each paper application, applies
//! thousands of deterministic seeded mutations from the
//! `karousos::faultinject` catalogue — structured (drop / duplicate /
//! reorder log entries, forge values and dictating writes, corrupt
//! opcounts and emitters) and wire-level (truncation, bit flips,
//! declared-length inflation) — and audits every mutant, checking each
//! outcome against its mutation's contract.

use std::collections::BTreeSet;

use apps::App;
use karousos::{
    audit_encoded, encode_advice, honest_must_accept, run_instrumented_server, CollectorMode,
    MutationClass, MutationOutcome, Mutator, WireMutator,
};
use kvstore::IsolationLevel;
use workload::{Experiment, Mix};

/// Seeds tried per structured mutator per scenario.
const STRUCTURED_SEEDS: u64 = 25;
/// Seeds tried per wire mutator per scenario.
const WIRE_SEEDS: u64 = 30;

struct Scenario {
    app: App,
    isolation: IsolationLevel,
    workload_seed: u64,
}

fn scenarios() -> Vec<Scenario> {
    // One scenario per paper application, across isolation levels, so
    // every mutator finds targets (the wiki workload is transaction-
    // heavy, MOTD is variable-log-heavy).
    App::ALL
        .iter()
        .zip(IsolationLevel::ALL)
        .enumerate()
        .map(|(i, (app, iso))| Scenario {
            app: *app,
            isolation: iso,
            workload_seed: 1000 + i as u64,
        })
        .collect()
}

#[test]
fn hostile_advice_contract_holds_across_thousands_of_mutations() {
    let mut total_mutations = 0usize;
    let mut kinds_exercised: BTreeSet<&'static str> = BTreeSet::new();
    let mut cosmetic_accepts = 0usize;
    let mut violations: Vec<String> = Vec::new();

    for sc in scenarios() {
        let mix = if sc.app == App::Wiki {
            Mix::Wiki
        } else {
            Mix::RW_MIXES[1]
        };
        let mut exp = Experiment::paper_default(sc.app, mix, 4, sc.workload_seed);
        exp.requests = 12;
        exp.isolation = sc.isolation;
        let program = sc.app.program();
        let (out, advice) = run_instrumented_server(
            &program,
            &exp.inputs(),
            &exp.server_config(),
            CollectorMode::Karousos,
        )
        .expect("apps run cleanly");
        let honest_bytes = encode_advice(&advice);

        // Fault-injection verdicts are only meaningful against a
        // baseline the verifier accepts.
        honest_must_accept(&program, &out.trace, &honest_bytes, sc.isolation);

        let mut check = |mutation: karousos::Mutation| {
            total_mutations += 1;
            kinds_exercised.insert(mutation.mutator);
            let result = audit_encoded(&program, &out.trace, &mutation.bytes, sc.isolation);
            let outcome = MutationOutcome::of(&result);
            if mutation.class == MutationClass::Cosmetic
                && matches!(outcome, MutationOutcome::Accepted)
            {
                cosmetic_accepts += 1;
            }
            if let Some(why) = outcome.violation(mutation.class) {
                violations.push(format!(
                    "{} on {} @ {}: {} ({})",
                    mutation.mutator,
                    sc.app.name(),
                    sc.isolation,
                    why,
                    mutation.description,
                ));
            }
        };

        for m in Mutator::ALL {
            for seed in 0..STRUCTURED_SEEDS {
                if let Some(mutation) = m.apply(&advice, seed) {
                    check(mutation);
                }
            }
        }
        for m in WireMutator::ALL {
            for seed in 0..WIRE_SEEDS {
                if let Some(mutation) = m.apply(&honest_bytes, seed) {
                    check(mutation);
                }
            }
        }
    }

    assert!(
        violations.is_empty(),
        "{} contract violations:\n{}",
        violations.len(),
        violations.join("\n")
    );
    assert!(
        total_mutations >= 1000,
        "harness ran only {total_mutations} mutations; need ≥1000"
    );
    assert!(
        kinds_exercised.len() >= 10,
        "harness exercised only {} mutator kinds: {:?}",
        kinds_exercised.len(),
        kinds_exercised
    );
    assert!(
        cosmetic_accepts > 0,
        "the cosmetic control never ran — ACCEPT-side coverage is gone"
    );
}

/// The semantic mutators are each designed to trip a *specific*
/// defense; spot-check a few reject reasons so a refactor that
/// accidentally reroutes a rejection (still REJECT, wrong layer)
/// surfaces here.
#[test]
fn semantic_mutations_trip_the_designed_defense() {
    use karousos::RejectReason;

    // One honest run per app: different apps exercise different advice
    // sections, so each mutator finds a target in at least one of them.
    let runs: Vec<_> = App::ALL
        .iter()
        .map(|&app| {
            let mix = if app == App::Wiki {
                Mix::Wiki
            } else {
                Mix::RW_MIXES[1]
            };
            let mut exp = Experiment::paper_default(app, mix, 4, 7);
            exp.requests = 10;
            let program = app.program();
            let (out, advice) = run_instrumented_server(
                &program,
                &exp.inputs(),
                &exp.server_config(),
                CollectorMode::Karousos,
            )
            .expect("apps run cleanly");
            let isolation = exp.isolation;
            honest_must_accept(&program, &out.trace, &encode_advice(&advice), isolation);
            (program, out, advice, isolation)
        })
        .collect();

    let reject = |m: Mutator| {
        let (program, out, mutation, isolation) = runs
            .iter()
            .find_map(|(program, out, advice, isolation)| {
                m.apply(advice, 3).map(|mu| (program, out, mu, *isolation))
            })
            .unwrap_or_else(|| panic!("{} found no target in any app", m.name()));
        audit_encoded(program, &out.trace, &mutation.bytes, isolation)
            .expect_err("semantic mutation accepted")
    };

    assert!(matches!(
        reject(Mutator::DuplicateHandlerLogEntry),
        RejectReason::InvalidLogOp { .. }
    ));
    assert!(matches!(
        reject(Mutator::PerturbOpnum),
        RejectReason::InvalidLogOp { .. }
    ));
    assert!(matches!(
        reject(Mutator::PerturbHandlerId),
        RejectReason::InvalidLogOp { .. }
    ));
    assert!(matches!(
        reject(Mutator::DropTag),
        RejectReason::MissingTag { .. }
    ));
    assert!(matches!(
        reject(Mutator::CorruptOpcount),
        RejectReason::OpcountMismatch { .. } | RejectReason::HandlerNotExecuted { .. }
    ));

    let (program, out, advice, isolation) = &runs[0];
    let truncated = WireMutator::Truncate
        .apply(&encode_advice(advice), 3)
        .expect("truncate applies");
    assert!(matches!(
        audit_encoded(program, &out.trace, &truncated.bytes, *isolation).unwrap_err(),
        RejectReason::MalformedAdvice { .. }
    ));
}
