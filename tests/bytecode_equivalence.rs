//! Differential equivalence of the two replay interpreters.
//!
//! The bytecode VM (DESIGN.md §11) is a drop-in replacement for the
//! tree-walk: same verdicts, same statistics (including the
//! bit-identical fuel bill), same `RejectReason` payloads, at every
//! threads×pipeline point. This harness pins that equivalence three
//! ways: over randomly generated programs (a seeded grammar covering
//! every non-transactional opcode), over honest runs of the paper
//! applications at every isolation level (transactions included), and
//! over a hostile corpus of several hundred structured and wire-level
//! advice mutations.

use apps::App;
use karousos::{
    audit_encoded_with_options, audit_with_options, encode_advice, run_instrumented_server,
    AuditOptions, AuditReport, CollectorMode, Mutator, RejectReason, WireMutator,
};
use kem::dsl::*;
use kem::{Expr, Program, ProgramBuilder, SchedPolicy, ServerConfig, Stmt, Value};
use kvstore::IsolationLevel;
use proptest::prelude::*;
use workload::{Experiment, Mix};

/// The comparable portion of an audit outcome (timing excluded).
type Outcome = Result<(karousos::ReexecStats, usize, usize), RejectReason>;

fn comparable(r: Result<AuditReport, RejectReason>) -> Outcome {
    r.map(|rep| (rep.reexec, rep.graph_nodes, rep.graph_edges))
}

/// Tree-walk serial baseline: every other cell must match it exactly.
fn baseline() -> AuditOptions {
    AuditOptions {
        threads: 1,
        pipeline: false,
        bytecode: false,
        ..AuditOptions::default()
    }
}

/// threads{1,4} × pipeline{off,on} × bytecode{off,on}.
fn matrix() -> Vec<AuditOptions> {
    let mut configs = Vec::new();
    for threads in [1usize, 4] {
        for pipeline in [false, true] {
            for bytecode in [false, true] {
                configs.push(AuditOptions {
                    pipeline,
                    bytecode,
                    ..AuditOptions::with_threads(threads)
                });
            }
        }
    }
    configs
}

fn assert_matrix_agrees(
    program: &Program,
    trace: &kem::Trace,
    bytes: &[u8],
    isolation: IsolationLevel,
    label: &str,
) -> Outcome {
    let sequential = comparable(audit_encoded_with_options(
        program,
        trace,
        bytes,
        isolation,
        baseline(),
    ));
    for opts in matrix() {
        let cell = comparable(audit_encoded_with_options(
            program, trace, bytes, isolation, opts,
        ));
        assert_eq!(
            sequential, cell,
            "{label}: tree-walk baseline vs threads={} pipeline={} bytecode={} disagree",
            opts.threads, opts.pipeline, opts.bytecode
        );
    }
    sequential
}

// ---------------------------------------------------------------------
// Generated programs: a seeded grammar over the non-transactional
// surface (arithmetic, collections, control flow, shared state, emit,
// listener counts, nondet). Programs are correct by construction —
// ints where arithmetic happens, in-range literal indexing — so every
// honest run completes and the audit must ACCEPT identically under
// both interpreters.
// ---------------------------------------------------------------------

/// Deterministic splitmix64 so each proptest seed names one program.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A small int-valued expression (safe operands for arithmetic).
fn gen_int_expr(r: &mut Rng) -> Expr {
    match r.below(6) {
        0 => lit(r.below(10) as i64),
        1 => sread("acc"),
        2 => field(payload(), "k"),
        3 => add(sread("acc"), lit(r.below(5) as i64)),
        4 => mul(field(payload(), "k"), lit(1 + r.below(3) as i64)),
        _ => sub(lit(r.below(20) as i64), field(payload(), "k")),
    }
}

fn gen_stmt(r: &mut Rng, depth: u32) -> Vec<Stmt> {
    match r.below(if depth == 0 { 6 } else { 9 }) {
        0 => vec![swrite("acc", add(sread("acc"), gen_int_expr(r)))],
        1 => vec![swrite(
            "dict",
            map_insert(
                sread("dict"),
                to_str(field(payload(), "k")),
                gen_int_expr(r),
            ),
        )],
        2 => vec![swrite("log", list_push(sread("log"), gen_int_expr(r)))],
        3 => vec![
            let_("t", listv(vec![lit(1i64), gen_int_expr(r), lit(3i64)])),
            swrite("acc", add(sread("acc"), index(local("t"), lit(1i64)))),
        ],
        4 => vec![
            let_("m", mapv(vec![("a", gen_int_expr(r)), ("b", lit(2i64))])),
            swrite(
                "acc",
                add(sread("acc"), add(len(keys(local("m"))), len(local("m")))),
            ),
        ],
        5 => vec![
            nondet_random("n", 4),
            swrite("log", list_push(sread("log"), local("n"))),
        ],
        6 => {
            // Bounded counting loop; the body recurses one level down.
            let bound = 1 + r.below(3) as i64;
            let mut body = gen_stmt(r, depth - 1);
            body.push(let_("i", add(local("i"), lit(1i64))));
            vec![
                let_("i", lit(0i64)),
                while_(lt(local("i"), lit(bound)), body),
            ]
        }
        7 => {
            let cond = match r.below(3) {
                0 => lt(field(payload(), "k"), lit(r.below(4) as i64)),
                1 => eq(modulo(sread("acc"), lit(2i64)), lit(0i64)),
                _ => contains(sread("dict"), to_str(field(payload(), "k"))),
            };
            vec![iff(cond, gen_stmt(r, depth - 1), gen_stmt(r, depth - 1))]
        }
        _ => {
            let mut body = gen_stmt(r, depth - 1);
            body.push(swrite("acc", add(sread("acc"), local("x"))));
            vec![for_each(
                "x",
                listv(vec![lit(1i64), lit(2i64), gen_int_expr(r)]),
                body,
            )]
        }
    }
}

fn gen_program(seed: u64) -> Program {
    let mut r = Rng(seed);
    let mut b = ProgramBuilder::new();
    b.shared_var("acc", Value::Int(0), true);
    b.shared_var("dict", Value::map(Vec::<(String, Value)>::new()), true);
    b.shared_var("log", Value::list(Vec::new()), true);
    let mut body = Vec::new();
    for _ in 0..2 + r.below(4) {
        body.extend(gen_stmt(&mut r, 2));
    }
    if r.below(2) == 0 {
        body.push(emit("tick", gen_int_expr(&mut r)));
    }
    if r.below(2) == 0 {
        body.push(listener_count("lc", "tick"));
        body.push(swrite("acc", add(sread("acc"), local("lc"))));
    }
    body.push(respond(digest(sread("dict"))));
    b.function("handle", body);
    b.function(
        "on_tick",
        vec![swrite("log", list_push(sread("log"), payload()))],
    );
    b.request_handler("handle");
    b.global_registration("tick", "on_tick");
    b.build().expect("generated program builds")
}

proptest! {
    // Each case runs a server plus a 9-cell audit matrix; keep the
    // count moderate (the grammar reaches every opcode within a few
    // dozen draws).
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_programs_replay_identically(
        seed in 0u64..10_000,
        sched_seed in 0u64..1_000,
        requests in 4usize..16,
    ) {
        let program = gen_program(seed);
        let inputs: Vec<Value> = (0..requests)
            .map(|i| Value::map([("k", Value::int(i as i64 % 5))]))
            .collect();
        let cfg = ServerConfig {
            concurrency: 3,
            policy: SchedPolicy::Random { seed: sched_seed },
            ..Default::default()
        };
        let (out, advice) =
            run_instrumented_server(&program, &inputs, &cfg, CollectorMode::Karousos)
                .expect("generated programs run cleanly");
        let bytes = encode_advice(&advice);
        let verdict = assert_matrix_agrees(
            &program,
            &out.trace,
            &bytes,
            IsolationLevel::Serializable,
            &format!("generated program seed={seed}"),
        );
        prop_assert!(
            verdict.is_ok(),
            "honest generated run rejected (seed={seed}): {:?}",
            verdict
        );
    }
}

// ---------------------------------------------------------------------
// Container-heavy programs: the persistent map/list representation
// (DESIGN.md §12) must be invisible to the audit. These programs are
// built to stress its structural-sharing machinery specifically —
// shared maps grown well past the 16-entry B-tree leaf width, a hot
// key rewritten repeatedly (path-copying over a multi-level tree),
// lists pushed across chunk boundaries, removals that thin interior
// nodes, and deeply nested literals read back out through field/index
// chains. Both interpreters must agree bit-for-bit on honest runs and
// on every structured and wire-level mutant.
// ---------------------------------------------------------------------

fn gen_container_program(seed: u64) -> Program {
    let mut r = Rng(seed);
    // Enough inserts to force the shared map past a single leaf and,
    // per request, keep reshaping a tree that other requests also grew.
    let grow = 20 + r.below(13) as i64;
    let mut b = ProgramBuilder::new();
    b.shared_var("big", Value::map(Vec::<(String, Value)>::new()), true);
    b.shared_var("log", Value::list(Vec::new()), true);
    b.shared_var("acc", Value::Int(0), true);
    let body = vec![
        // Grow the shared map one insert at a time; keys are disjoint
        // per payload class so concurrent requests interleave inserts
        // into distinct regions of the same tree.
        let_("i", lit(0i64)),
        while_(
            lt(local("i"), lit(grow)),
            vec![
                swrite(
                    "big",
                    map_insert(
                        sread("big"),
                        to_str(add(local("i"), mul(field(payload(), "k"), lit(100i64)))),
                        local("i"),
                    ),
                ),
                swrite("log", list_push(sread("log"), local("i"))),
                let_("i", add(local("i"), lit(1i64))),
            ],
        ),
        // Hammer a single key: every iteration path-copies the same
        // root-to-leaf spine of a now multi-level map.
        let_("hot", to_str(field(payload(), "k"))),
        let_("j", lit(0i64)),
        while_(
            lt(local("j"), lit(8i64)),
            vec![
                swrite(
                    "big",
                    map_insert(sread("big"), local("hot"), mul(local("j"), lit(7i64))),
                ),
                let_("j", add(local("j"), lit(1i64))),
            ],
        ),
        // Deep literal nesting, read back through a field/index chain.
        let_(
            "nest",
            mapv(vec![(
                "a",
                mapv(vec![(
                    "b",
                    mapv(vec![(
                        "c",
                        listv(vec![lit(1i64), mapv(vec![("d", gen_int_expr(&mut r))])]),
                    )]),
                )]),
            )]),
        ),
        swrite(
            "acc",
            add(
                sread("acc"),
                field(
                    index(field(field(field(local("nest"), "a"), "b"), "c"), lit(1i64)),
                    "d",
                ),
            ),
        ),
        // Thin the tree back out; roughly half the removals hit keys
        // that exist, the rest are no-ops — both must replay the same.
        let_("rm", lit(0i64)),
        while_(
            lt(local("rm"), lit(grow / 2)),
            vec![
                swrite(
                    "big",
                    map_remove(sread("big"), to_str(mul(local("rm"), lit(2i64)))),
                ),
                let_("rm", add(local("rm"), lit(1i64))),
            ],
        ),
        respond(digest(listv(vec![
            digest(sread("big")),
            digest(sread("log")),
            sread("acc"),
            len(keys(sread("big"))),
        ]))),
    ];
    b.function("handle", body);
    b.request_handler("handle");
    b.build().expect("container-heavy program builds")
}

#[test]
fn container_heavy_programs_replay_identically() {
    for seed in [3u64, 29] {
        let program = gen_container_program(seed);
        let inputs: Vec<Value> = (0..8)
            .map(|i| Value::map([("k", Value::int(i as i64 % 4))]))
            .collect();
        let cfg = ServerConfig {
            concurrency: 3,
            policy: SchedPolicy::Random { seed: 61 + seed },
            ..Default::default()
        };
        let (out, advice) =
            run_instrumented_server(&program, &inputs, &cfg, CollectorMode::Karousos)
                .expect("container-heavy programs run cleanly");
        let honest_bytes = encode_advice(&advice);
        let verdict = assert_matrix_agrees(
            &program,
            &out.trace,
            &honest_bytes,
            IsolationLevel::Serializable,
            &format!("container-heavy seed={seed}"),
        );
        assert!(
            verdict.is_ok(),
            "honest container-heavy run rejected (seed={seed}): {verdict:?}"
        );
        // Hostile leg: every mutator over this advice — whose values
        // are dominated by multi-level maps and chunked lists — must
        // be judged identically by the two interpreters at every cell.
        for m in Mutator::ALL {
            for s in 0..2 {
                if let Some(mutation) = m.apply(&advice, s) {
                    let _ = assert_matrix_agrees(
                        &program,
                        &out.trace,
                        &mutation.bytes,
                        IsolationLevel::Serializable,
                        &format!("{} on container-heavy seed={seed}", mutation.mutator),
                    );
                }
            }
        }
        for m in WireMutator::ALL {
            for s in 0..2 {
                if let Some(mutation) = m.apply(&honest_bytes, s) {
                    let _ = assert_matrix_agrees(
                        &program,
                        &out.trace,
                        &mutation.bytes,
                        IsolationLevel::Serializable,
                        &format!("{} on container-heavy seed={seed}", mutation.mutator),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Paper applications: honest runs at every isolation level (the wiki
// workload is transaction-heavy, so the tx opcodes replay here).
// ---------------------------------------------------------------------

#[test]
fn honest_apps_replay_identically_across_the_matrix() {
    for app in App::ALL {
        for isolation in IsolationLevel::ALL {
            let mix = if app == App::Wiki {
                Mix::Wiki
            } else {
                Mix::RW_MIXES[1]
            };
            let mut exp = Experiment::paper_default(app, mix, 4, 61);
            exp.requests = 16;
            exp.isolation = isolation;
            let program = app.program();
            let (out, advice) = run_instrumented_server(
                &program,
                &exp.inputs(),
                &exp.server_config(),
                CollectorMode::Karousos,
            )
            .expect("apps run cleanly");
            let bytes = encode_advice(&advice);
            let verdict = assert_matrix_agrees(
                &program,
                &out.trace,
                &bytes,
                isolation,
                &format!("{} at {isolation}", app.name()),
            );
            assert!(
                verdict.is_ok(),
                "honest {} run rejected at {isolation}: {:?}",
                app.name(),
                verdict
            );
        }
    }
}

/// The structured audit entry point resolves `bytecode` from
/// [`AuditOptions::from_env`]; both explicit settings must agree with
/// it on a real app (guards the env-gate wiring end to end).
#[test]
fn explicit_bytecode_settings_agree_with_default() {
    let app = App::Stacks;
    let mut exp = Experiment::paper_default(app, Mix::RW_MIXES[1], 4, 67);
    exp.requests = 12;
    let program = app.program();
    let (out, advice) = run_instrumented_server(
        &program,
        &exp.inputs(),
        &exp.server_config(),
        CollectorMode::Karousos,
    )
    .expect("apps run cleanly");
    let default = comparable(audit_with_options(
        &program,
        &out.trace,
        &advice,
        IsolationLevel::Serializable,
        AuditOptions::default(),
    ));
    for bytecode in [false, true] {
        let explicit = comparable(audit_with_options(
            &program,
            &out.trace,
            &advice,
            IsolationLevel::Serializable,
            AuditOptions {
                bytecode,
                ..AuditOptions::default()
            },
        ));
        assert_eq!(
            default, explicit,
            "bytecode={bytecode} diverges from default"
        );
    }
}

// ---------------------------------------------------------------------
// Hostile corpus: the two interpreters must reject the same mutants
// for the same reason with the same payload.
// ---------------------------------------------------------------------

#[test]
fn hostile_corpus_replays_identically() {
    const SEEDS: u64 = 5;
    let mut checked = 0usize;
    let mut rejected = 0usize;
    for (i, (app, isolation)) in App::ALL.iter().zip(IsolationLevel::ALL).enumerate() {
        let mix = if *app == App::Wiki {
            Mix::Wiki
        } else {
            Mix::RW_MIXES[1]
        };
        let mut exp = Experiment::paper_default(*app, mix, 4, 700 + i as u64);
        exp.requests = 12;
        exp.isolation = isolation;
        let program = app.program();
        let (out, advice) = run_instrumented_server(
            &program,
            &exp.inputs(),
            &exp.server_config(),
            CollectorMode::Karousos,
        )
        .expect("apps run cleanly");
        let honest_bytes = encode_advice(&advice);

        let mut check = |bytes: &[u8], label: &str| {
            let verdict = assert_matrix_agrees(
                &program,
                &out.trace,
                bytes,
                isolation,
                &format!("{label} on {}", app.name()),
            );
            if verdict.is_err() {
                rejected += 1;
            }
            checked += 1;
        };

        for m in Mutator::ALL {
            for seed in 0..SEEDS {
                if let Some(mutation) = m.apply(&advice, seed) {
                    check(&mutation.bytes, mutation.mutator);
                }
            }
        }
        for m in WireMutator::ALL {
            for seed in 0..SEEDS {
                if let Some(mutation) = m.apply(&honest_bytes, seed) {
                    check(&mutation.bytes, mutation.mutator);
                }
            }
        }
    }
    assert!(
        checked >= 200,
        "only {checked} mutations compared; corpus too small"
    );
    assert!(
        rejected >= 100,
        "only {rejected} rejections compared; REJECT-side coverage too small"
    );
}
