//! Completeness matrix: every honest execution must be ACCEPTed.
//!
//! Sweeps the three evaluation applications across request mixes,
//! concurrency levels, scheduler seeds, isolation levels, and both
//! collection modes (Karousos and Orochi-JS), running the full
//! pipeline: instrumented server → (trace, advice) → audit.

use apps::App;
use karousos::{audit, run_instrumented_server, CollectorMode};
use kvstore::IsolationLevel;
use workload::{Experiment, Mix};

fn check(app: App, mix: Mix, n: usize, concurrency: usize, seed: u64, iso: IsolationLevel) {
    let mut exp = Experiment::paper_default(app, mix, concurrency, seed);
    exp.requests = n;
    exp.isolation = iso;
    let program = app.program();
    let inputs = exp.inputs();
    for mode in [CollectorMode::Karousos, CollectorMode::OrochiJs] {
        let (out, advice) = run_instrumented_server(&program, &inputs, &exp.server_config(), mode)
            .unwrap_or_else(|e| {
                panic!(
                    "{} {} c={concurrency} seed={seed}: server error {e}",
                    app.name(),
                    mix.name()
                )
            });
        audit(&program, &out.trace, &advice, iso).unwrap_or_else(|e| {
            panic!(
                "{} {} c={concurrency} seed={seed} iso={iso} {mode:?}: rejected honest run: {e}",
                app.name(),
                mix.name()
            )
        });
    }
}

#[test]
fn motd_all_mixes_sequentialish() {
    for mix in Mix::RW_MIXES {
        check(App::Motd, mix, 40, 1, 0, IsolationLevel::Serializable);
    }
}

#[test]
fn motd_concurrent_seeds() {
    for seed in 0..6 {
        check(
            App::Motd,
            Mix::Mixed,
            40,
            8,
            seed,
            IsolationLevel::Serializable,
        );
    }
}

#[test]
fn stacks_all_mixes_sequentialish() {
    for mix in Mix::RW_MIXES {
        check(App::Stacks, mix, 30, 1, 0, IsolationLevel::Serializable);
    }
}

#[test]
fn stacks_concurrent_seeds() {
    for seed in 0..6 {
        check(
            App::Stacks,
            Mix::Mixed,
            30,
            6,
            seed,
            IsolationLevel::Serializable,
        );
    }
}

#[test]
fn stacks_all_isolation_levels() {
    for iso in IsolationLevel::ALL {
        for seed in 0..3 {
            check(App::Stacks, Mix::WriteHeavy, 30, 5, seed, iso);
        }
    }
}

#[test]
fn wiki_sequentialish() {
    check(App::Wiki, Mix::Wiki, 30, 1, 0, IsolationLevel::Serializable);
}

#[test]
fn wiki_concurrent_seeds() {
    for seed in 0..6 {
        check(
            App::Wiki,
            Mix::Wiki,
            30,
            6,
            seed,
            IsolationLevel::Serializable,
        );
    }
}

#[test]
fn wiki_all_isolation_levels() {
    for iso in IsolationLevel::ALL {
        check(App::Wiki, Mix::Wiki, 30, 5, 1, iso);
    }
}

#[test]
fn high_concurrency_smoke() {
    for app in App::ALL {
        let mix = if app == App::Wiki {
            Mix::Wiki
        } else {
            Mix::Mixed
        };
        check(app, mix, 60, 30, 42, IsolationLevel::Serializable);
    }
}

#[test]
fn wiki_extended_workload_accepts() {
    // The extended mix (page edits) across seeds and isolation levels.
    let program = App::Wiki.program();
    for iso in IsolationLevel::ALL {
        for seed in 0..4u64 {
            let inputs = workload::wiki_extended_workload(30, seed);
            let cfg = kem::ServerConfig {
                concurrency: 5,
                isolation: iso,
                policy: kem::SchedPolicy::Random { seed },
                ..Default::default()
            };
            for mode in [CollectorMode::Karousos, CollectorMode::OrochiJs] {
                let (out, advice) = run_instrumented_server(&program, &inputs, &cfg, mode).unwrap();
                audit(&program, &out.trace, &advice, iso).unwrap_or_else(|e| {
                    panic!("extended wiki rejected (seed {seed}, {iso}, {mode:?}): {e}")
                });
            }
        }
    }
}
