//! Fuel accounting is a function of the advice, not of the verifier's
//! execution configuration: the same (advice, limits) pair must yield
//! an identical verdict — and for accepted runs, an identical total
//! fuel bill — at every threads×pipeline combination. This is what
//! makes `ResourceExhausted { resource: ReplayFuel }` a reproducible
//! audit verdict rather than a scheduling accident.

use apps::App;
use karousos::{
    audit_encoded_with_options, encode_advice, run_instrumented_server, AuditOptions,
    CollectorMode, ExhaustMutator, Limits, RejectReason,
};
use proptest::prelude::*;
use workload::{Experiment, Mix};

const MATRIX: [(usize, bool); 4] = [(1, false), (1, true), (4, false), (4, true)];

fn matrix_verdicts(
    program: &kem::Program,
    trace: &kem::Trace,
    bytes: &[u8],
    isolation: kvstore::IsolationLevel,
    limits: Limits,
) -> Vec<Result<u64, RejectReason>> {
    MATRIX
        .iter()
        .map(|&(threads, pipeline)| {
            let opts = AuditOptions {
                pipeline,
                limits,
                ..AuditOptions::with_threads(threads)
            };
            audit_encoded_with_options(program, trace, bytes, isolation, opts)
                .map(|report| report.reexec.fuel_spent)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Honest advice: every configuration ACCEPTs and bills the same
    /// total fuel.
    #[test]
    fn honest_fuel_bill_is_config_independent(
        app_pick in 0usize..3,
        seed in 0u64..500,
        concurrency in 1usize..6,
    ) {
        let app = App::ALL[app_pick];
        let mix = if app == App::Wiki { Mix::Wiki } else { Mix::Mixed };
        let mut exp = Experiment::paper_default(app, mix, concurrency, seed);
        exp.requests = 16;
        let program = app.program();
        let (out, advice) = run_instrumented_server(
            &program,
            &exp.inputs(),
            &exp.server_config(),
            CollectorMode::Karousos,
        ).unwrap();
        let bytes = encode_advice(&advice);
        let verdicts = matrix_verdicts(
            &program, &out.trace, &bytes, exp.isolation, Limits::default(),
        );
        for (v, (threads, pipeline)) in verdicts.iter().zip(MATRIX) {
            match v {
                Ok(fuel) => prop_assert!(
                    *fuel > 0,
                    "{app:?} seed={seed}: zero fuel billed for a non-empty replay"
                ),
                Err(e) => return Err(TestCaseError::fail(format!(
                    "{app:?} seed={seed} threads={threads} pipeline={pipeline} \
                     rejected honest run: {e}"
                ))),
            }
        }
        prop_assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "{app:?} seed={seed}: fuel bill diverged across configs: {verdicts:?}"
        );
    }

    /// Loop-bombed advice under a tight budget: every configuration
    /// REJECTs with the same `ResourceExhausted` verdict — same group,
    /// same spent, same limit.
    #[test]
    fn exhaustion_verdict_is_config_independent(
        seed in 0u64..500,
        fuel_budget in 1_000u64..50_000,
    ) {
        let mut exp = Experiment::paper_default(App::Stacks, Mix::Mixed, 4, seed);
        exp.requests = 12;
        let program = App::Stacks.program();
        let (out, advice) = run_instrumented_server(
            &program,
            &exp.inputs(),
            &exp.server_config(),
            CollectorMode::Karousos,
        ).unwrap();
        let bytes = match ExhaustMutator::LoopBomb.apply(&advice, seed) {
            Some(m) => m.bytes,
            // No nondet ops in this run: nothing to bomb; accept-side
            // determinism is already covered above.
            None => return Ok(()),
        };
        let limits = Limits { replay_fuel: fuel_budget, ..Limits::default() };
        let verdicts = matrix_verdicts(&program, &out.trace, &bytes, exp.isolation, limits);
        prop_assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "seed={seed} budget={fuel_budget}: verdict diverged across configs: {verdicts:?}"
        );
    }
}
