//! Model-based equivalence suite for the persistent containers
//! (`kem::pvalue`, DESIGN.md §12).
//!
//! `PMap` is driven against a `BTreeMap<String, Value>` oracle and
//! `PList` against a `Vec<Value>` oracle through random operation
//! sequences; after every step the observable API (insert / remove /
//! get / iter / len) must agree, and at the end the *semantic layer*
//! must agree bit-for-bit: `digest()` and `Display` are checked against
//! independent re-implementations of the documented canonical encoding
//! (not against the container under test), and `Ord`/`Hash`/`Eq` must
//! match the oracle's ordering. Structural-sharing tests pin the whole
//! point of the representation: an update leaves every untouched value
//! `Arc::ptr_eq` with the source container's.

use kem::{Fnv, Value};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Independent oracles for the canonical encodings
// ---------------------------------------------------------------------------

/// Re-implements `Value::digest` for a map of scalar values from the
/// oracle's `BTreeMap`, independent of `PMap` iteration.
fn oracle_map_digest(m: &BTreeMap<String, Value>) -> u64 {
    let mut h = Fnv::new();
    h.write(&[5]);
    h.write(&(m.len() as u64).to_le_bytes());
    for (k, v) in m {
        h.write(&(k.len() as u64).to_le_bytes());
        h.write(k.as_bytes());
        feed_scalar(v, &mut h);
    }
    h.finish()
}

/// Re-implements `Value::digest` for a list of scalar values.
fn oracle_list_digest(l: &[Value]) -> u64 {
    let mut h = Fnv::new();
    h.write(&[4]);
    h.write(&(l.len() as u64).to_le_bytes());
    for v in l {
        feed_scalar(v, &mut h);
    }
    h.finish()
}

fn feed_scalar(v: &Value, h: &mut Fnv) {
    match v {
        Value::Null => h.write(&[0]),
        Value::Int(i) => {
            h.write(&[2]);
            h.write(&i.to_le_bytes());
        }
        Value::Str(s) => {
            h.write(&[3]);
            h.write(&(s.len() as u64).to_le_bytes());
            h.write(s.as_bytes());
        }
        other => unreachable!("model uses scalar values only, got {other:?}"),
    }
}

/// Re-implements map `Display` from the oracle.
fn oracle_map_display(m: &BTreeMap<String, Value>) -> String {
    let body: Vec<String> = m.iter().map(|(k, v)| format!("{k}: {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

fn oracle_list_display(l: &[Value]) -> String {
    let body: Vec<String> = l.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", body.join(", "))
}

fn std_hash<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Operation sequences
// ---------------------------------------------------------------------------

/// A map operation over a deliberately small key universe, so long
/// sequences revisit keys (overwrites, removes of present keys).
#[derive(Clone, Debug)]
enum MapOp {
    Insert(usize, i64),
    Remove(usize),
}

/// Key universe: 40 keys of varying length, unsorted construction
/// order so bulk builds and incremental builds see different orders.
fn key(i: usize) -> String {
    format!("k{:02}{}", (i * 17) % 40, "x".repeat(i % 3))
}

fn arb_map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..40, -100i64..100).prop_map(|(k, v)| MapOp::Insert(k, v)),
            (0usize..40).prop_map(MapOp::Remove),
        ],
        0..120,
    )
}

#[derive(Clone, Debug)]
enum ListOp {
    Push(i64),
    Concat(Vec<i64>),
}

fn arb_list_ops() -> impl Strategy<Value = Vec<ListOp>> {
    prop::collection::vec(
        prop_oneof![
            (-100i64..100).prop_map(ListOp::Push),
            prop::collection::vec(-100i64..100, 0..40).prop_map(ListOp::Concat),
        ],
        0..60,
    )
}

proptest! {
    /// Random insert/remove sequences agree with the `BTreeMap` oracle
    /// at every step, and the final value's digest/Display match the
    /// independent canonical-encoding oracles.
    #[test]
    fn pmap_tracks_btreemap_oracle(ops in arb_map_ops()) {
        let mut subject = Value::empty_map();
        let mut oracle: BTreeMap<String, Value> = BTreeMap::new();
        for op in &ops {
            match op {
                MapOp::Insert(ki, v) => {
                    let (k, v) = (key(*ki), Value::int(*v));
                    subject =
                        kem::eval_map_insert(&subject, &Value::str(&k), &v).expect("map insert");
                    oracle.insert(k, v);
                }
                MapOp::Remove(ki) => {
                    let k = key(*ki);
                    subject = kem::eval_map_remove(&subject, &Value::str(&k)).expect("map remove");
                    oracle.remove(&k);
                }
            }
            let m = subject.as_map().expect("subject stays a map");
            prop_assert_eq!(m.len(), oracle.len());
            // Spot-check membership across the whole key universe.
            for ki in 0..40 {
                let k = key(ki);
                prop_assert_eq!(m.get(&k), oracle.get(&k));
                prop_assert_eq!(m.contains_key(&k), oracle.contains_key(&k));
            }
        }
        // Ordered iteration agrees entry-for-entry.
        let m = subject.as_map().expect("map");
        let got: Vec<(String, Value)> =
            m.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        let want: Vec<(String, Value)> =
            oracle.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(
            m.keys().map(|k| k.to_string()).collect::<Vec<_>>(),
            oracle.keys().cloned().collect::<Vec<_>>()
        );
        // Canonical encodings are bit-identical to the oracle's.
        prop_assert_eq!(subject.digest(), oracle_map_digest(&oracle));
        prop_assert_eq!(subject.to_string(), oracle_map_display(&oracle));
        // A bulk rebuild from the oracle is Eq/Ord/Hash-identical to the
        // incrementally built subject.
        let rebuilt = Value::from_map(oracle.clone());
        prop_assert_eq!(&subject, &rebuilt);
        prop_assert_eq!(subject.cmp(&rebuilt), std::cmp::Ordering::Equal);
        prop_assert_eq!(std_hash(&subject), std_hash(&rebuilt));
    }

    /// Push/concat sequences agree with the `Vec` oracle: len, every
    /// index, iteration, containment, digest, and Display.
    #[test]
    fn plist_tracks_vec_oracle(ops in arb_list_ops()) {
        let mut subject = Value::empty_list();
        let mut oracle: Vec<Value> = Vec::new();
        for op in &ops {
            match op {
                ListOp::Push(v) => {
                    let v = Value::int(*v);
                    subject = kem::eval_list_push(&subject, &v).expect("list push");
                    oracle.push(v);
                }
                ListOp::Concat(vs) => {
                    let rhs: Vec<Value> = vs.iter().map(|v| Value::int(*v)).collect();
                    subject = kem::eval_binop(
                        kem::BinOp::Add,
                        &subject,
                        &Value::from_vec(rhs.clone()),
                    )
                    .expect("list concat");
                    oracle.extend(rhs);
                }
            }
            let l = subject.as_list().expect("subject stays a list");
            prop_assert_eq!(l.len(), oracle.len());
        }
        let l = subject.as_list().expect("list");
        for (i, want) in oracle.iter().enumerate() {
            prop_assert_eq!(l.get(i), Some(want));
        }
        prop_assert_eq!(l.get(oracle.len()), None);
        prop_assert!(l.iter().eq(oracle.iter()));
        prop_assert!(l.contains(&Value::int(0)) == oracle.contains(&Value::int(0)));
        prop_assert_eq!(subject.digest(), oracle_list_digest(&oracle));
        prop_assert_eq!(subject.to_string(), oracle_list_display(&oracle));
        let rebuilt = Value::from_vec(oracle.clone());
        prop_assert_eq!(&subject, &rebuilt);
        prop_assert_eq!(subject.cmp(&rebuilt), std::cmp::Ordering::Equal);
        prop_assert_eq!(std_hash(&subject), std_hash(&rebuilt));
    }

    /// `Ord` over persistent maps equals the old `BTreeMap` order
    /// (lexicographic over `(key, value)` pairs), and `Ord` over lists
    /// equals `Vec`'s element-lexicographic order.
    #[test]
    fn ord_matches_oracle(a in arb_map_ops(), b in arb_map_ops()) {
        let build = |ops: &[MapOp]| {
            let mut oracle = BTreeMap::new();
            for op in ops {
                match op {
                    MapOp::Insert(ki, v) => {
                        oracle.insert(key(*ki), Value::int(*v));
                    }
                    MapOp::Remove(ki) => {
                        oracle.remove(&key(*ki));
                    }
                }
            }
            (Value::from_map(oracle.clone()), oracle)
        };
        let ((va, oa), (vb, ob)) = (build(&a), build(&b));
        prop_assert_eq!(va.cmp(&vb), oa.cmp(&ob));
        // List order: element-lexicographic.
        let la = Value::from_vec(oa.values().cloned().collect::<Vec<_>>());
        let lb = Value::from_vec(ob.values().cloned().collect::<Vec<_>>());
        let wa: Vec<Value> = oa.values().cloned().collect();
        let wb: Vec<Value> = ob.values().cloned().collect();
        prop_assert_eq!(la.cmp(&lb), wa.cmp(&wb));
    }
}

// ---------------------------------------------------------------------------
// Structural sharing: the representation's raison d'être
// ---------------------------------------------------------------------------

/// Inner `Arc<str>` of a string value, for pointer-identity checks.
fn str_arc(v: &Value) -> &Arc<str> {
    match v {
        Value::Str(s) => s,
        other => panic!("expected a string value, got {other:?}"),
    }
}

#[test]
fn pmap_update_shares_untouched_values() {
    let base =
        Value::map((0..200).map(|i| (key(i % 40) + &format!("{i}"), Value::str(format!("v{i}")))));
    let m = base.as_map().unwrap();
    let updated = m.insert(Arc::from("k00x42-new"), Value::str("fresh"));
    assert_eq!(updated.len(), m.len() + 1);
    // Every pre-existing value is the same allocation, not a copy.
    for (k, v) in m.iter() {
        let shared = updated.get(k).expect("old keys survive the insert");
        assert!(
            Arc::ptr_eq(str_arc(v), str_arc(shared)),
            "value for {k} was copied instead of shared"
        );
    }
    // And the overwhelming majority of *nodes* are shared too: an
    // overwrite of one key keeps every other value ptr-identical.
    let overwritten = m.insert(Arc::from(key(7).as_str()), Value::str("new"));
    for (k, v) in m.iter() {
        if k.as_ref() != key(7).as_str() {
            assert!(Arc::ptr_eq(
                str_arc(v),
                str_arc(overwritten.get(k).unwrap())
            ));
        }
    }
}

#[test]
fn pmap_remove_shares_untouched_values() {
    let base = Value::map((0..100).map(|i| (format!("key{i:03}"), Value::str(format!("v{i}")))));
    let m = base.as_map().unwrap();
    let removed = m.remove("key050");
    assert_eq!(removed.len(), 99);
    for (k, v) in m.iter() {
        if k.as_ref() != "key050" {
            assert!(Arc::ptr_eq(str_arc(v), str_arc(removed.get(k).unwrap())));
        }
    }
}

#[test]
fn plist_push_shares_prefix_values() {
    let base = Value::list((0..150).map(|i| Value::str(format!("v{i}"))));
    let l = base.as_list().unwrap();
    let pushed = l.push(Value::str("tail"));
    assert_eq!(pushed.len(), 151);
    for (i, v) in l.iter().enumerate() {
        assert!(
            Arc::ptr_eq(str_arc(v), str_arc(pushed.get(i).unwrap())),
            "element {i} was copied instead of shared"
        );
    }
}

#[test]
fn plist_concat_shares_both_sides() {
    let a = Value::list((0..60).map(|i| Value::str(format!("a{i}"))));
    let b = Value::list((0..60).map(|i| Value::str(format!("b{i}"))));
    let (la, lb) = (a.as_list().unwrap(), b.as_list().unwrap());
    let cat = la.concat(lb);
    assert_eq!(cat.len(), 120);
    for (i, v) in la.iter().enumerate() {
        assert!(Arc::ptr_eq(str_arc(v), str_arc(cat.get(i).unwrap())));
    }
    for (i, v) in lb.iter().enumerate() {
        assert!(Arc::ptr_eq(str_arc(v), str_arc(cat.get(60 + i).unwrap())));
    }
}

#[test]
fn functional_updates_leave_source_untouched() {
    let m = Value::map([("a", Value::int(1))]);
    let m2 = kem::eval_map_insert(&m, &Value::str("b"), &Value::int(2)).unwrap();
    assert_eq!(m.len(), Some(1));
    assert_eq!(m2.len(), Some(2));
    let l = Value::list([Value::int(1)]);
    let l2 = kem::eval_list_push(&l, &Value::int(2)).unwrap();
    assert_eq!(l.len(), Some(1));
    assert_eq!(l2.len(), Some(2));
}
