//! Chaos harness for resource governance (DESIGN.md §10): every
//! exhaustion vector in the [`ExhaustMutator`] catalogue must terminate
//! with a structured REJECT under a tight budget — never a hang, an
//! OOM, or an abort — and the verdict must be identical at every
//! threads×pipeline configuration. Honest advice must stay ACCEPTed
//! under the default limits.

use karousos::{
    audit_encoded_with_options, audit_with_options, encode_advice, run_instrumented_server, Advice,
    AuditOptions, CollectorMode, ExhaustMutator, Limits, RejectReason,
};
use kem::dsl::*;
use kem::{Program, ProgramBuilder, RunOutput, SchedPolicy, ServerConfig, Value};
use kvstore::IsolationLevel;

/// A handler whose loop bound is advice-fed: the recorded nondet
/// counter drives the outer loop, so forged advice controls how much
/// work replay does. The inner loop keeps each outer iteration well
/// under the per-loop backstop while multiplying total steps — the
/// shape `LOOP_LIMIT` alone cannot contain and the fuel meter must.
fn spin_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.shared_var("last", Value::Int(0), true);
    b.function(
        "handle",
        vec![
            nondet_counter("n"),
            let_("i", lit(0i64)),
            while_(
                lt(local("i"), local("n")),
                vec![
                    let_("j", lit(0i64)),
                    while_(
                        lt(local("j"), lit(100i64)),
                        vec![let_("j", add(local("j"), lit(1i64)))],
                    ),
                    let_("i", add(local("i"), lit(1i64))),
                ],
            ),
            swrite("last", local("i")),
            respond(lit(0i64)),
        ],
    );
    b.request_handler("handle");
    b.build().unwrap()
}

/// Two control-flow paths, so honest runs form two groups — the
/// fixture for group-width attacks (merging the tags makes one group
/// as wide as the whole trace).
fn branch_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.shared_var("seen", Value::Int(0), true);
    b.function(
        "handle",
        vec![
            swrite("seen", add(sread("seen"), lit(1i64))),
            iff(
                field(payload(), "b"),
                vec![respond(lit(1i64))],
                vec![respond(lit(2i64))],
            ),
        ],
    );
    b.request_handler("handle");
    b.build().unwrap()
}

fn honest(program: &Program, inputs: &[Value], seed: u64) -> (RunOutput, Advice) {
    let cfg = ServerConfig {
        concurrency: 2,
        policy: SchedPolicy::Random { seed },
        ..Default::default()
    };
    run_instrumented_server(program, inputs, &cfg, CollectorMode::Karousos).unwrap()
}

/// The full determinism matrix: the quarantine verdict (like any other
/// verdict) must be bit-identical across worker counts, pipeline
/// modes, and replay interpreters (tree-walk and bytecode VM). For
/// `ResourceExhausted` that includes the `(group, spent, limit)`
/// payload — the VM's batched fuel charging must trip at exactly the
/// unit the tree-walk would.
const MATRIX: [(usize, bool, bool); 8] = [
    (1, false, false),
    (1, false, true),
    (1, true, false),
    (1, true, true),
    (4, false, false),
    (4, false, true),
    (4, true, false),
    (4, true, true),
];

fn audit_matrix(
    program: &Program,
    out: &RunOutput,
    bytes: &[u8],
    limits: Limits,
) -> Vec<Result<(), RejectReason>> {
    MATRIX
        .iter()
        .map(|&(threads, pipeline, bytecode)| {
            let opts = AuditOptions {
                pipeline,
                bytecode,
                limits,
                ..AuditOptions::with_threads(threads)
            };
            audit_encoded_with_options(
                program,
                &out.trace,
                bytes,
                IsolationLevel::Serializable,
                opts,
            )
            .map(|_| ())
        })
        .collect()
}

/// Applies `m` to honest advice and audits under `limits`, asserting
/// every matrix cell rejects identically with the expected verdict.
fn assert_contained(
    program: &Program,
    out: &RunOutput,
    advice: &Advice,
    m: ExhaustMutator,
    limits: Limits,
) {
    let mutation = m
        .apply(advice, 7)
        .unwrap_or_else(|| panic!("{} found nothing to mutate", m.name()));
    let verdicts = audit_matrix(program, out, &mutation.bytes, limits);
    let first = verdicts[0].clone();
    for (v, &(threads, pipeline, bytecode)) in verdicts.iter().zip(MATRIX.iter()) {
        assert_eq!(
            *v,
            first,
            "{}: verdict diverged at threads={threads} pipeline={pipeline} bytecode={bytecode}",
            m.name()
        );
    }
    match (&first, m.expected()) {
        (Err(RejectReason::ResourceExhausted { resource, .. }), Some(want)) => {
            assert_eq!(
                *resource,
                want,
                "{}: tripped {resource}, expected {want}",
                m.name()
            );
        }
        (Err(RejectReason::MalformedAdvice { .. }), None) => {}
        other => panic!(
            "{}: expected a contained rejection, got {:?} ({})",
            m.name(),
            other.0,
            mutation.description
        ),
    }
}

#[test]
fn loop_bomb_is_contained_by_fuel() {
    let program = spin_program();
    let (out, advice) = honest(&program, &vec![Value::Null; 6], 3);
    // Honest replay under the default limits still ACCEPTs.
    let honest_bytes = encode_advice(&advice);
    for v in audit_matrix(&program, &out, &honest_bytes, Limits::default()) {
        v.expect("honest spin advice must accept under default limits");
    }
    let limits = Limits {
        replay_fuel: 200_000,
        ..Limits::default()
    };
    assert_contained(&program, &out, &advice, ExhaustMutator::LoopBomb, limits);
    // The fuel payload must be exact, not merely matrix-identical: the
    // tree-walk charges one unit at a time so the first over-budget
    // unit reports spent == limit + 1, and the VM's batched charging
    // must reproduce that value bit-for-bit.
    let mutation = ExhaustMutator::LoopBomb.apply(&advice, 7).unwrap();
    for v in audit_matrix(&program, &out, &mutation.bytes, limits) {
        match v {
            Err(RejectReason::ResourceExhausted {
                resource,
                spent,
                limit,
                ..
            }) => {
                assert_eq!(resource, karousos::verifier::ResourceKind::ReplayFuel);
                assert_eq!(limit, 200_000);
                assert_eq!(spent, 200_001, "fuel trip must report limit + 1");
            }
            other => panic!("expected fuel verdict, got {other:?}"),
        }
    }
}

#[test]
fn loop_bomb_is_contained_by_deadline_when_fuel_is_unmetered() {
    let program = spin_program();
    let (out, advice) = honest(&program, &vec![Value::Null; 4], 5);
    let mutation = ExhaustMutator::LoopBomb.apply(&advice, 7).unwrap();
    // Fuel unmetered: only the wall clock can stop the spin. The
    // deadline verdict is machine-dependent in its `spent` field, so
    // (unlike fuel) it is asserted per-cell, not across the matrix.
    let limits = Limits {
        replay_fuel: u64::MAX,
        group_deadline_ms: 100,
        ..Limits::default()
    };
    for v in audit_matrix(&program, &out, &mutation.bytes, limits) {
        match v {
            Err(RejectReason::ResourceExhausted { resource, .. }) => {
                assert_eq!(resource, karousos::verifier::ResourceKind::GroupDeadline);
            }
            other => panic!("expected deadline verdict, got {other:?}"),
        }
    }
}

#[test]
fn deep_recursion_is_contained_by_the_nesting_guard() {
    let program = spin_program();
    let (out, advice) = honest(&program, &vec![Value::Null; 4], 11);
    assert_contained(
        &program,
        &out,
        &advice,
        ExhaustMutator::DeepRecursion,
        Limits::default(),
    );
}

#[test]
fn alloc_bomb_is_contained_by_the_node_budget() {
    let program = spin_program();
    let (out, advice) = honest(&program, &vec![Value::Null; 4], 13);
    let limits = Limits {
        decode_max_nodes: 8_192,
        ..Limits::default()
    };
    assert_contained(&program, &out, &advice, ExhaustMutator::AllocBomb, limits);
}

#[test]
fn dict_flood_is_contained_by_the_entry_budget() {
    let program = branch_program();
    let inputs: Vec<Value> = (0..8)
        .map(|i| Value::map([("b", Value::int(i % 2))]))
        .collect();
    let (out, advice) = honest(&program, &inputs, 17);
    let limits = Limits {
        dict_max_entries: 1_000,
        ..Limits::default()
    };
    assert_contained(&program, &out, &advice, ExhaustMutator::DictFlood, limits);
}

#[test]
fn edge_explosion_is_contained_by_the_graph_budget() {
    let program = spin_program();
    let (out, advice) = honest(&program, &vec![Value::Null; 4], 19);
    let limits = Limits {
        graph_max_nodes: 100_000,
        ..Limits::default()
    };
    assert_contained(
        &program,
        &out,
        &advice,
        ExhaustMutator::EdgeExplosion,
        limits,
    );
}

#[test]
fn oversized_multivalue_is_contained_by_the_width_cap() {
    let program = branch_program();
    let inputs: Vec<Value> = (0..8)
        .map(|i| Value::map([("b", Value::int(i % 2))]))
        .collect();
    let (out, advice) = honest(&program, &inputs, 23);
    // Honest groups are 4 wide; the merged group is 8 wide.
    let limits = Limits {
        max_group_width: 6,
        ..Limits::default()
    };
    assert_contained(
        &program,
        &out,
        &advice,
        ExhaustMutator::OversizedMultivalue,
        limits,
    );
}

/// The structured-audit path (decoded advice) honors limits too: the
/// same loop bomb through [`audit_with_options`] instead of the
/// encoded entry point.
#[test]
fn decoded_audit_path_is_fuel_metered_too() {
    let program = spin_program();
    let (out, advice) = honest(&program, &vec![Value::Null; 4], 29);
    let mutation = ExhaustMutator::LoopBomb.apply(&advice, 7).unwrap();
    let mutated = karousos::decode_advice(&mutation.bytes).unwrap();
    let opts = AuditOptions {
        limits: Limits {
            replay_fuel: 200_000,
            ..Limits::default()
        },
        ..AuditOptions::with_threads(1)
    };
    match audit_with_options(
        &program,
        &out.trace,
        &mutated,
        IsolationLevel::Serializable,
        opts,
    ) {
        Err(RejectReason::ResourceExhausted { resource, .. }) => {
            assert_eq!(resource, karousos::verifier::ResourceKind::ReplayFuel);
        }
        other => panic!("expected fuel verdict, got {other:?}"),
    }
}
