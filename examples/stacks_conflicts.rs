//! Concurrency, conflicts, and isolation levels on the stack-dump app.
//!
//! ```sh
//! cargo run --release --example stacks_conflicts
//! ```
//!
//! Demonstrates the transactional substrate end-to-end: conflicting
//! concurrent reports produce retry errors (the paper's deadlock-
//! avoidance behaviour), aborted transactions leave no trace in the
//! write order, and the audit accepts at every supported isolation
//! level — including the weak levels where dirty reads are legal.

use apps::App;
use karousos::{audit, run_instrumented_server, CollectorMode, TxOpType};
use kem::{RequestId, SchedPolicy, ServerConfig, Value};
use kvstore::IsolationLevel;

fn main() {
    // Everyone reports the same dump at once: conflicts guaranteed on
    // some schedules.
    let inputs: Vec<Value> = (0..8)
        .map(|i| {
            if i % 4 == 3 {
                apps::stacks::count("segfault in parser")
            } else {
                apps::stacks::report("segfault in parser")
            }
        })
        .collect();
    let program = App::Stacks.program();

    for isolation in IsolationLevel::ALL {
        println!("== isolation: {isolation} ==");
        for seed in 0..3u64 {
            let cfg = ServerConfig {
                concurrency: 6,
                isolation,
                policy: SchedPolicy::Random { seed },
                ..Default::default()
            };
            let (out, advice) =
                run_instrumented_server(&program, &inputs, &cfg, CollectorMode::Karousos)
                    .expect("stacks runs cleanly");
            let retries = (0..inputs.len())
                .filter(|&i| {
                    out.trace
                        .output_of(RequestId(i as u64))
                        .and_then(|v| v.field("error").cloned())
                        .is_some()
                })
                .count();
            let aborted = advice
                .tx_logs
                .values()
                .filter(|log| log.last().is_some_and(|e| e.optype == TxOpType::Abort))
                .count();
            let verdict = match audit(&program, &out.trace, &advice, isolation) {
                Ok(_) => "ACCEPT".to_string(),
                Err(e) => format!("REJECT: {e}"),
            };
            println!(
                "  seed {seed}: {} commits, {aborted} aborted txns, {retries} retry \
                 responses → {verdict}",
                out.store_stats.committed,
            );
        }
    }
}
