//! Quickstart: write a tiny event-driven app, run the instrumented
//! server on it, and audit the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The flow mirrors the paper's deployment (Fig. 1): the *server* runs
//! the application and collects advice; the *collector* (here, the
//! simulated server boundary) produces the trusted trace; the
//! *verifier* replays the trace in batches and accepts or rejects.

use karousos::{audit, run_instrumented_server, CollectorMode};
use kem::dsl::*;
use kem::{ProgramBuilder, SchedPolicy, ServerConfig, Value};
use kvstore::IsolationLevel;

fn main() {
    // 1. The application: a shared greeting that clients read or set.
    let mut b = ProgramBuilder::new();
    b.shared_var("greeting", Value::str("hello"), /* loggable */ true);
    b.function(
        "handle",
        vec![iff(
            eq(field(payload(), "op"), lit("get")),
            vec![respond(sread("greeting"))],
            vec![
                swrite("greeting", field(payload(), "text")),
                respond(lit("ok")),
            ],
        )],
    );
    b.request_handler("handle");
    let program = b.build().expect("valid program");

    // 2. A workload: interleaved reads and writes, four at a time.
    let inputs: Vec<Value> = (0..12)
        .map(|i| {
            if i % 3 == 0 {
                Value::map([
                    ("op", Value::str("set")),
                    ("text", Value::str(format!("msg {i}"))),
                ])
            } else {
                Value::map([("op", Value::str("get"))])
            }
        })
        .collect();
    let cfg = ServerConfig {
        concurrency: 4,
        isolation: IsolationLevel::Serializable,
        policy: SchedPolicy::Random { seed: 2024 },
        ..Default::default()
    };

    // 3. Run the Karousos server: it executes the app *and* collects
    //    advice; the trace is the collector's ground truth.
    let (out, advice) = run_instrumented_server(&program, &inputs, &cfg, CollectorMode::Karousos)
        .expect("application runs cleanly");
    println!(
        "server handled {} requests in {} scheduler steps",
        inputs.len(),
        out.steps
    );
    println!(
        "advice: {} var-log entries, {} bytes on the wire",
        advice.var_log_entries(),
        karousos::encode_advice(&advice).len()
    );

    // 4. Audit: re-execute the trace in groups, checked against the
    //    (untrusted) advice.
    let report = audit(&program, &out.trace, &advice, cfg.isolation)
        .expect("honest executions are always accepted");
    println!(
        "ACCEPT: {} re-execution groups covering {} handler activations \
         ({} handler bodies actually interpreted)",
        report.reexec.groups, report.reexec.activations_covered, report.reexec.handlers_executed
    );

    // 5. A tampered trace is rejected.
    let mut tampered = out.trace.clone();
    for ev in tampered.events_mut().iter_mut().rev() {
        if let kem::TraceEvent::Response { output, .. } = ev {
            *output = Value::str("message the server never sent");
            break;
        }
    }
    let err = audit(&program, &tampered, &advice, cfg.isolation)
        .expect_err("tampered traces are always rejected");
    println!("REJECT (as expected): {err}");
}
