//! Play the dishonest server: a gallery of attacks and the defenses
//! that stop them.
//!
//! ```sh
//! cargo run --release --example adversarial_server
//! ```
//!
//! Each attack starts from an honest stacks-application run, then
//! tampers with the trace or the advice the way a misbehaving server
//! could; the audit must name the defense that fired. The final attack
//! is the paper's Figure 5: a physically impossible cross-read that
//! only the execution-graph cycle check can catch.

use apps::App;
use karousos::advice::{AccessType, VarLogEntry};
use karousos::{audit, run_instrumented_server, Advice, CollectorMode, TxOpType};
use kem::dsl::*;
use kem::{HandlerId, OpRef, ProgramBuilder, RequestId, Trace, Value};
use kvstore::IsolationLevel;
use workload::{Experiment, Mix};

const SER: IsolationLevel = IsolationLevel::Serializable;

fn main() {
    let exp = Experiment::paper_default(App::Stacks, Mix::Mixed, 4, 3);
    let exp = workload::Experiment {
        requests: 40,
        ..exp
    };
    let program = App::Stacks.program();
    let (out, advice) = run_instrumented_server(
        &program,
        &exp.inputs(),
        &exp.server_config(),
        CollectorMode::Karousos,
    )
    .expect("stacks runs cleanly");
    println!(
        "honest run: {:?}\n",
        audit(&program, &out.trace, &advice, SER).map(|_| "ACCEPT")
    );

    // Attack 1: lie about a response.
    let mut t = out.trace.clone();
    if let Some(kem::TraceEvent::Response { output, .. }) = t.events_mut().last_mut() {
        *output = Value::str("everything is fine, nothing was dropped");
    }
    show("forged response", audit(&program, &t, &advice, SER));

    // Attack 2: overstate how many times a dump was reported, by
    // corrupting the logged PUT value.
    let mut a = advice.clone();
    if let Some(entry) = a
        .tx_logs
        .values_mut()
        .flatten()
        .find(|e| e.optype == TxOpType::Put)
    {
        if let karousos::TxOpContents::Put { value } = &mut entry.contents {
            *value = Value::map([("dump", Value::str("x")), ("count", Value::int(1_000_000))]);
        }
    }
    show("forged PUT value", audit(&program, &out.trace, &a, SER));

    // Attack 3: hide a committed write from the write order.
    let mut a = advice.clone();
    a.write_order.pop();
    show(
        "truncated write order",
        audit(&program, &out.trace, &a, SER),
    );

    // Attack 4: claim all requests batch together (they do not share
    // control flow).
    let mut a = advice.clone();
    for tag in a.tags.values_mut() {
        *tag = 0;
    }
    show("forged grouping", audit(&program, &out.trace, &a, SER));

    // Attack 5 — Figure 5 of the paper: two requests that each
    // allegedly read the *other's* write. Out-of-order replay would
    // reproduce it; the execution graph exposes the impossibility.
    let (program, trace, advice) = fig5();
    show(
        "figure-5 cross reads",
        audit(&program, &trace, &advice, SER),
    );
}

fn show(name: &str, result: Result<karousos::AuditReport, karousos::RejectReason>) {
    match result {
        Ok(_) => println!("{name:<24} ACCEPT  (!!! the attack went unnoticed)"),
        Err(e) => println!("{name:<24} REJECT: {e}"),
    }
}

/// Builds the Figure 5 scenario from scratch, as a malicious server
/// would: program `t := x; x := input; respond t`, with advice claiming
/// each of two concurrent requests observed the other's write.
fn fig5() -> (kem::Program, Trace, Advice) {
    let mut b = ProgramBuilder::new();
    b.shared_var("x", Value::Int(0), true);
    b.function(
        "handle",
        vec![
            let_("t", sread("x")),
            swrite("x", field(payload(), "v")),
            respond(local("t")),
        ],
    );
    b.request_handler("handle");
    let program = b.build().unwrap();

    let hid = HandlerId::root(program.function_id("handle").unwrap());
    let (r0, r1) = (RequestId(0), RequestId(1));
    let w0 = OpRef::new(r0, hid.clone(), 2);
    let w1 = OpRef::new(r1, hid.clone(), 2);
    let init = OpRef::new(RequestId::INIT, kem::init_handler_id(), 1);

    let mut trace = Trace::new();
    trace.push_request(r0, Value::map([("v", Value::int(5))]));
    trace.push_request(r1, Value::map([("v", Value::int(7))]));
    trace.push_response(r0, Value::int(7));
    trace.push_response(r1, Value::int(5));

    let mut advice = Advice::default();
    for rid in [r0, r1] {
        advice.tags.insert(rid, 1);
        advice.opcounts.insert((rid, hid.clone()), 2);
        advice.response_emitted_by.insert(rid, (hid.clone(), 2));
    }
    let mut log = karousos::VarLog::new();
    log.insert(
        w0.clone(),
        VarLogEntry {
            access: AccessType::Write,
            value: Some(Value::int(5)),
            prec: Some(init),
        },
    );
    log.insert(
        w1.clone(),
        VarLogEntry {
            access: AccessType::Write,
            value: Some(Value::int(7)),
            prec: Some(w0.clone()),
        },
    );
    log.insert(
        OpRef::new(r0, hid.clone(), 1),
        VarLogEntry {
            access: AccessType::Read,
            value: None,
            prec: Some(w1),
        },
    );
    log.insert(
        OpRef::new(r1, hid.clone(), 1),
        VarLogEntry {
            access: AccessType::Read,
            value: None,
            prec: Some(w0),
        },
    );
    advice.var_logs.insert(program.var_id("x").unwrap(), log);
    (program, trace, advice)
}
