//! Audit a realistic wiki workload end-to-end, comparing Karousos
//! against the Orochi-JS baseline on grouping and advice size.
//!
//! ```sh
//! cargo run --release --example wiki_audit
//! ```
//!
//! This is the paper's headline application (§6): a Wiki.js-like app
//! with page creation, comments, and renders in the 25/15/60 ratio
//! derived from a Wikipedia trace.

use std::time::Instant;

use apps::App;
use karousos::{advice_sizes, audit, run_instrumented_server, CollectorMode};
use workload::{Experiment, Mix};

fn main() {
    let exp = Experiment::paper_default(App::Wiki, Mix::Wiki, 30, 7);
    let program = App::Wiki.program();
    let inputs = exp.inputs();
    println!(
        "wiki workload: {} requests, concurrency {}",
        inputs.len(),
        exp.concurrency
    );

    for mode in [CollectorMode::Karousos, CollectorMode::OrochiJs] {
        let t0 = Instant::now();
        let (out, advice) = run_instrumented_server(&program, &inputs, &exp.server_config(), mode)
            .expect("wiki runs cleanly");
        let server_time = t0.elapsed();

        let t0 = Instant::now();
        let report = audit(&program, &out.trace, &advice, exp.isolation)
            .expect("honest wiki executions are accepted");
        let verify_time = t0.elapsed();

        let sizes = advice_sizes(&advice);
        println!("\n[{mode:?}]");
        println!("  server time          {server_time:?}");
        println!("  verification time    {verify_time:?}");
        println!("  re-execution groups  {}", report.reexec.groups);
        println!(
            "  advice               {} KB total, {} KB variable logs ({}%)",
            sizes.total() / 1024,
            sizes.var_logs / 1024,
            sizes.var_logs * 100 / sizes.total().max(1)
        );
        println!(
            "  dedup                {} collapsed vs {} expanded operations",
            report.reexec.uniform_ops, report.reexec.expanded_ops
        );
    }

    // The sequential baseline replays one request at a time.
    let (out, _) = run_instrumented_server(
        &program,
        &inputs,
        &exp.server_config(),
        CollectorMode::Karousos,
    )
    .unwrap();
    let t0 = Instant::now();
    let seq =
        baselines::sequential_reexecute(&program, &out.trace, exp.isolation).expect("replay runs");
    println!(
        "\n[sequential baseline] {} requests replayed in {:?} ({} matched)",
        seq.replayed,
        t0.elapsed(),
        seq.matched
    );
}
