#!/usr/bin/env python3
"""Validate a harness metrics export against schema/metrics.schema.json.

CI runners don't ship the `jsonschema` package, so this implements the
small draft-07 subset the checked-in schema actually uses: `type`,
`required`, `properties`, `additionalProperties: false`, `items`,
`minItems` / `maxItems`, `minimum`, and `$ref` into `#/definitions`.

Usage: validate_metrics.py <schema.json> <metrics.json>
"""

import json
import sys


def resolve(schema, root):
    while "$ref" in schema:
        ref = schema["$ref"]
        assert ref.startswith("#/"), f"unsupported $ref {ref!r}"
        node = root
        for part in ref[2:].split("/"):
            node = node[part]
        schema = node
    return schema


def type_ok(value, ty):
    if ty == "object":
        return isinstance(value, dict)
    if ty == "array":
        return isinstance(value, list)
    if ty == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if ty == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if ty == "string":
        return isinstance(value, str)
    if ty == "null":
        return value is None
    if ty == "boolean":
        return isinstance(value, bool)
    raise AssertionError(f"unsupported type {ty!r}")


def check(value, schema, root, path, errors):
    schema = resolve(schema, root)

    ty = schema.get("type")
    if ty is not None:
        types = ty if isinstance(ty, list) else [ty]
        if not any(type_ok(value, t) for t in types):
            errors.append(f"{path}: expected {types}, got {type(value).__name__}")
            return

    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in props:
                    errors.append(f"{path}: unexpected key {key!r}")
        for key, sub in props.items():
            if key in value:
                check(value[key], sub, root, f"{path}.{key}", errors)

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: {len(value)} items < minItems {schema['minItems']}")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            errors.append(f"{path}: {len(value)} items > maxItems {schema['maxItems']}")
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                check(item, items, root, f"{path}[{i}]", errors)


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        schema = json.load(f)
    with open(sys.argv[2]) as f:
        metrics = json.load(f)
    errors = []
    check(metrics, schema, schema, "$", errors)
    if errors:
        for e in errors:
            print(f"schema violation: {e}", file=sys.stderr)
        return 1
    print(f"{sys.argv[2]}: conforms to {sys.argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
