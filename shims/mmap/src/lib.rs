//! Minimal read-only memory mapping, std-only.
//!
//! The verifier wants to audit multi-gigabyte advice files without
//! holding a heap copy resident; all it needs from the OS is "give me a
//! read-only, page-aligned window onto this file". The build
//! environment has no registry access, so instead of `memmap2` this
//! tiny shim declares the two libc symbols (`mmap`/`munmap`) that every
//! unix toolchain already links and wraps them in a safe owner type.
//!
//! Scope is deliberately narrow:
//!
//! * **read-only** (`PROT_READ`) and **private** (`MAP_PRIVATE`) — the
//!   mapping can never write back to the advice file, and concurrent
//!   writers can at worst change which bytes the audit reads, which the
//!   audit already treats as untrusted input;
//! * **whole-file** maps only, page-aligned by construction (offset 0);
//! * on non-unix targets [`Mmap::map_readonly`] returns
//!   [`std::io::ErrorKind::Unsupported`], and callers are expected to
//!   fall back to `std::fs::read` — the caller-visible contract is
//!   "bytes of the file", never "mmap or bust".

#![warn(missing_docs)]

use std::fs::File;
use std::io;

/// An owned read-only memory mapping of an entire file.
///
/// Dereferences to `&[u8]`; unmapped on drop. A zero-length file maps
/// to an empty slice without touching the OS (`mmap(len=0)` is
/// `EINVAL`).
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE; the kernel will never
// mutate it through this handle and we expose only shared `&[u8]`
// access, so moving or sharing the owner across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// Errors are ordinary [`io::Error`]s: metadata failures, the OS
    /// refusing the mapping, or [`io::ErrorKind::Unsupported`] on
    /// non-unix targets (and for files whose length overflows `usize`).
    /// Callers treat any error as "fall back to reading the file".
    #[cfg(unix)]
    pub fn map_readonly(file: &File) -> io::Result<Mmap> {
        use std::os::fd::AsRawFd;

        let len64 = file.metadata()?.len();
        let len = usize::try_from(len64)
            .map_err(|_| io::Error::new(io::ErrorKind::Unsupported, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: fd is a valid open file descriptor for the lifetime of
        // the call; len is its current size; we request a fresh private
        // read-only mapping at a kernel-chosen (page-aligned) address.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void*)-1.
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *mut u8,
            len,
        })
    }

    /// Non-unix targets: always `Unsupported`; callers fall back to
    /// `std::fs::read`.
    #[cfg(not(unix))]
    pub fn map_readonly(_file: &File) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap not supported on this platform",
        ))
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len came from a successful whole-file mmap that
        // stays valid until drop; the mapping is read-only.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len != 0 {
            // SAFETY: ptr/len are the exact values returned by mmap;
            // nothing can still borrow the slice (drop takes &mut self,
            // and all loans of as_slice() end before drop).
            unsafe {
                sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    #[cfg(unix)]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join(format!("kmmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let mut f = File::create(&path).unwrap();
        f.write_all(b"hello mapped world").unwrap();
        f.sync_all().unwrap();
        let ro = File::open(&path).unwrap();
        let map = Mmap::map_readonly(&ro).unwrap();
        assert_eq!(&*map, b"hello mapped world");
        assert_eq!(map.len(), 18);
        // Page alignment: the kernel picked the address.
        assert_eq!(map.as_slice().as_ptr() as usize % 4096, 0);
        drop(map);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg(unix)]
    fn empty_file_maps_to_empty_slice() {
        let dir = std::env::temp_dir().join(format!("kmmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        File::create(&path).unwrap();
        let ro = File::open(&path).unwrap();
        let map = Mmap::map_readonly(&ro).unwrap();
        assert!(map.is_empty());
        assert_eq!(&*map, b"");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
