//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so
//! external dependencies are replaced by small API-compatible shims
//! (see the workspace `Cargo.toml`). This crate covers exactly the
//! subset of `rand` 0.8 the workspace uses:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable, *non-cryptographic*
//!   generator (here: splitmix64-seeded xoshiro256++),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over half-open integer ranges.
//!
//! Streams are deterministic for a given seed, which is all the
//! workloads and replay schedules require. Do not use for anything
//! security-sensitive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics if the range is
    /// empty, like `rand` proper.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++ seeded through
    /// splitmix64, the same construction `rand`'s `SmallRng` documents
    /// on 64-bit targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            SmallRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
        let v = rng.gen_range(-5i64..5);
        assert!((-5..5).contains(&v));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let draws_a: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(draws_a, draws_b);
    }
}
