//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without crates.io access, so this shim provides
//! the subset of proptest's API the workspace uses: the [`Strategy`]
//! trait (`prop_map`, `prop_recursive`, `boxed`), [`BoxedStrategy`],
//! `any::<T>()`, range and string-pattern strategies, tuples,
//! `collection::{vec, btree_map}`, `option::of`, `array::uniform3`,
//! `sample::Index`, and the `proptest!` / `prop_compose!` /
//! `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from proptest proper: generation is deterministic (the
//! per-case RNG is seeded from the test name and case number), and
//! there is **no shrinking** — a failing case reports its case number
//! and message and panics as-is. That trades minimal counterexamples
//! for zero dependencies, which is the right trade when the registry is
//! unreachable.

#![forbid(unsafe_code)]

/// Deterministic RNG and test-case plumbing.
pub mod test_runner {
    /// Splitmix64-based generator; cheap, deterministic, good enough
    /// for test-case generation (never used for anything else).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    impl TestRng {
        /// RNG for one named test case: same (name, case) → same stream.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            TestRng {
                state: fnv1a(test_name.as_bytes())
                    ^ (0x9E37_79B9_7F4A_7C15u64).wrapping_mul(case as u64 + 1),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `0..n`. Panics if `n == 0`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot draw below 0");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Runner configuration; only `cases` is meaningful in the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold; the message explains why.
        Fail(String),
        /// The inputs were unsuitable (treated the same as Fail here).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given explanation.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

/// The [`Strategy`] trait and core combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// Something that can generate values of `Self::Value`.
    ///
    /// Generate-only: no shrinking, no value trees.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds a depth-bounded recursive strategy: `recurse` wraps
        /// the strategy-so-far, and every level can also fall back to
        /// the leaf. (`_desired_size` / `_expected_branch` are accepted
        /// for API compatibility and ignored.)
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = Union::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
            }
            cur
        }
    }

    /// A type-erased, cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Picks uniformly among several strategies of the same value type.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "Union of zero strategies");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.options.len());
            self.options[pick].generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = rng.next_u64() as u128 % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    /// `&'static str` patterns of the shape `[class]{m}` / `[class]{m,n}`
    /// generate strings over the class; anything else generates the
    /// literal itself.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((chars, lo, hi)) if !chars.is_empty() => {
                    let len = lo + rng.below(hi - lo + 1);
                    (0..len).map(|_| chars[rng.below(chars.len())]).collect()
                }
                _ => (*self).to_string(),
            }
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((chars, lo, hi))
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);
}

/// `any::<T>()` and the [`Arbitrary`] trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// A `BTreeMap` with up to `size` entries (duplicate keys collapse,
    /// so the result may be smaller than the draw).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[T; 3]`, all cells drawn from the same strategy.
    #[derive(Debug, Clone)]
    pub struct Uniform3<S> {
        inner: S,
    }

    /// Three values from one strategy.
    pub fn uniform3<S: Strategy>(inner: S) -> Uniform3<S> {
        Uniform3 { inner }
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [
                self.inner.generate(rng),
                self.inner.generate(rng),
                self.inner.generate(rng),
            ]
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose size is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `0..size`. Panics if `size == 0`, like
        /// proptest proper.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };

    /// Namespaced access to the strategy modules (`prop::collection`,
    /// `prop::option`, `prop::array`, `prop::sample`).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Runs `config.cases` deterministic cases; a failing case
/// panics with its case number (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} failed at case {}/{}: {}", stringify!($name), case, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Defines a function returning a composite strategy:
/// `fn name(params)(bindings in strategies) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)($($arg:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Picks uniformly among the listed strategies (weights, if given, are
/// accepted and ignored).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$({ let _ = $weight; $crate::strategy::Strategy::boxed($strat) }),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.0f64..1.0), &mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_respect_class_and_len() {
        let mut rng = TestRng::for_case("strings", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9 ]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
            let t = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&t.len()));
        }
    }

    #[test]
    fn recursion_terminates() {
        let leaf = prop_oneof![Just(0u64), any::<u64>()];
        let tree = Strategy::prop_recursive(leaf, 3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..4)
                .prop_map(|v| v.iter().fold(0u64, |a, x| a.wrapping_add(*x)))
        });
        let mut rng = TestRng::for_case("rec", 1);
        for _ in 0..100 {
            let _ = Strategy::generate(&tree, &mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(
            xs in prop::collection::vec(0u8..10, 0..8),
            pick in any::<prop::sample::Index>(),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 8);
            if !xs.is_empty() {
                let x = xs[pick.index(xs.len())];
                prop_assert!(x < 10, "x = {} out of range", x);
            }
            prop_assert_ne!(u64::from(flag), 2u64);
        }
    }
}
