//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without crates.io access, so this shim provides
//! the subset of criterion's API the benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `criterion_group!`,
//! `criterion_main!`, `black_box` — backed by a simple wall-clock
//! runner: each benchmark is warmed up once, then timed over
//! `sample_size` batches, and the per-iteration median is printed as
//! one line. No statistics machinery, no HTML reports; numbers are
//! indicative, and the benches' real value offline is that they compile
//! and run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (printed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing context passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for samples of at least ~1ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = iters;
        let samples = self.samples.capacity().max(1);
        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn per_iter(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        Some(median / (self.iters_per_sample.max(1) as u32))
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size.max(1)),
        iters_per_sample: 1,
    };
    f(&mut b);
    match b.per_iter() {
        Some(t) => {
            let extra = match throughput {
                Some(Throughput::Bytes(n)) if t.as_nanos() > 0 => {
                    let gbps = n as f64 / t.as_nanos() as f64;
                    format!("  ({gbps:.3} GB/s)")
                }
                Some(Throughput::Elements(n)) if t.as_nanos() > 0 => {
                    let meps = n as f64 / t.as_nanos() as f64 * 1e3;
                    format!("  ({meps:.3} Melem/s)")
                }
                _ => String::new(),
            };
            println!("bench {name:<48} {t:>12.3?}/iter{extra}");
        }
        None => println!("bench {name:<48} (no samples)"),
    }
}

/// The benchmark runner (shim: holds the sample size).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().id, self.sample_size, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(8));
        group.bench_function(BenchmarkId::new("f", "p"), |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
